// Package server exposes a catalog of named probabilistic instances over
// HTTP, turning the PXML library into a small probabilistic
// semistructured database service:
//
//	GET    /instances                 list instances with summary stats
//	PUT    /instances/{name}          store an instance (text or JSON body)
//	GET    /instances/{name}          fetch an instance (Accept: application/json for JSON)
//	DELETE /instances/{name}          drop an instance
//	GET    /instances/{name}/dot      Graphviz rendering of the weak graph
//	POST   /instances/{name}/query    execute one pxql statement (text body);
//	                                  ?store=<new> keeps an instance-valued
//	                                  result in the catalog under that name
//	POST   /instances/{name}/batch    execute many statements (one per line)
//	                                  concurrently over the engine's pool
//	GET    /metrics                   JSON snapshot: server counters plus
//	                                  per-instance engine metrics
//	POST   /admin/backup              cut an online backup of the durable
//	                                  store into a subdirectory of the
//	                                  configured backup root (403 until
//	                                  SetBackupRoot / pxmld -backup-dir)
//	POST   /admin/scrub               synchronous checksum scrub of the
//	                                  store's at-rest files
//	GET    /healthz                   liveness: 200 while the process runs
//	GET    /readyz                    readiness: 503 while draining or the
//	                                  store is degraded
//
// Query responses are JSON: {"text": ..., "prob": ..., "stored": ...}.
// Errors are structured JSON: {"error": ...} with the matching status code
// (400 malformed, 404 unknown, 413 oversized body, 422 invalid instance or
// failing statement, 429 shed under overload with Retry-After, 503 for
// expired request deadlines and writes against a degraded store).
//
// The handler stack is hardened for production traffic: a panic in any
// handler is recovered to a 500 (and counted), SetRequestTimeout bounds
// each request with a context deadline, and SetMaxInflight sheds excess
// concurrent requests with 429 + Retry-After instead of queueing without
// bound. Health probes bypass the limiter so liveness checks still answer
// under overload. When the backing store degrades (unrecoverable disk
// errors), writes fail fast with 503 while reads and queries keep serving
// from memory — the catalog never silently diverges from disk.
//
// Each stored instance is wrapped in an engine.Engine, so repeated queries
// against the same instance reuse its cached path index, compiled Bayesian
// network, and marginals, and every request is counted in that engine's
// metrics. The catalog is safe for concurrent use; instances are immutable
// once stored (queries never mutate their input — algebra results are
// fresh instances).
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pxml/internal/codec"
	"pxml/internal/core"
	"pxml/internal/dot"
	"pxml/internal/engine"
	"pxml/internal/metrics"
	"pxml/internal/rescache"
	"pxml/internal/store"
)

// defaultMaxBody bounds instance-upload bodies unless SetMaxBody overrides.
const defaultMaxBody = 64 << 20

// defaultResultCacheBytes bounds the shared query-result cache.
const defaultResultCacheBytes = 32 << 20

// maxStatementBytes bounds a single pxql statement (or batch) body.
const maxStatementBytes = 1 << 20

// Server is a concurrency-safe catalog of named query engines, optionally
// backed by the durable storage engine (see NewPersistent) or, for the
// legacy layout, by a directory of flat text files (NewPersistentFiles).
type Server struct {
	mu         sync.RWMutex
	engines    map[string]*engine.Engine
	store      *store.Store // log-structured persistence; nil unless NewPersistent/NewWithStore
	dir        string       // legacy flat-file persistence; "" unless NewPersistentFiles
	backupRoot string       // /admin/backup destination root; "" = endpoint disabled
	maxBody    int64
	log        *slog.Logger

	// results memoizes scalar query answers across all instances; version
	// feeds each engine's cache-key prefix so entries for a replaced
	// instance become unreachable the moment Put installs the new engine.
	results      *rescache.Cache
	version      atomic.Uint64
	queryWorkers int // batch worker bound per engine; 0 = engine default

	started    time.Time
	draining   atomic.Bool
	reqTimeout time.Duration // per-request deadline; 0 = none
	sem        chan struct{} // in-flight limiter; nil = unlimited

	reg      *metrics.Registry
	requests *metrics.Counter
	errors   *metrics.Counter
	shed     *metrics.Counter
	panics   *metrics.Counter
	inflight *metrics.Gauge
	latency  *metrics.Histogram
}

// New returns an empty catalog. Request logging is off until SetLogger.
func New() *Server {
	s := &Server{
		engines: make(map[string]*engine.Engine),
		maxBody: defaultMaxBody,
		started: time.Now(),
		reg:     metrics.NewRegistry(),
		results: rescache.New(defaultResultCacheBytes),
	}
	s.requests = s.reg.Counter("http_requests")
	s.errors = s.reg.Counter("http_errors")
	s.shed = s.reg.Counter("http_shed")
	s.panics = s.reg.Counter("http_panics")
	s.inflight = s.reg.Gauge("http_inflight")
	s.latency = s.reg.Histogram("http_latency")
	return s
}

// SetLogger enables structured request logging through l (nil disables).
func (s *Server) SetLogger(l *slog.Logger) { s.log = l }

// SetMaxBody overrides the instance-upload size limit (bytes). Intended
// for tests and memory-constrained deployments.
func (s *Server) SetMaxBody(n int64) {
	if n > 0 {
		s.maxBody = n
	}
}

// SetRequestTimeout bounds every API request with a context deadline;
// handlers that outlive it answer 503. Zero disables. Like the other
// Set* knobs, call it before the handler starts serving.
func (s *Server) SetRequestTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.reqTimeout = d
}

// SetMaxInflight caps concurrently served API requests; excess requests
// are shed immediately with 429 + Retry-After rather than queued. Health
// probes are exempt. Zero disables. Call before serving.
func (s *Server) SetMaxInflight(n int) {
	if n > 0 {
		s.sem = make(chan struct{}, n)
	} else {
		s.sem = nil
	}
}

// SetQueryWorkers bounds each engine's batch worker pool; n < 1 selects
// GOMAXPROCS. Existing engines are rebuilt with the new bound (their
// derived-structure caches restart cold). Like the other Set* knobs,
// call it before the handler starts serving.
func (s *Server) SetQueryWorkers(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queryWorkers = n
	for name, eng := range s.engines {
		s.engines[name] = s.newEngine(name, eng.Instance())
	}
}

// QueryWorkers returns the configured per-engine batch worker bound
// (0 until SetQueryWorkers is called — the engine default applies).
func (s *Server) QueryWorkers() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.queryWorkers
}

// newEngine wraps an instance in an engine wired to the shared result
// cache under a fresh version prefix (the \x00 separator keeps any
// name/statement pair from colliding with another prefix). Callers hold
// s.mu or have exclusive access during construction.
func (s *Server) newEngine(name string, pi *core.ProbInstance) *engine.Engine {
	prefix := fmt.Sprintf("%s@%d\x00", name, s.version.Add(1))
	opts := []engine.Option{engine.WithResultCache(s.results, prefix)}
	if s.queryWorkers > 0 {
		opts = append(opts, engine.WithWorkers(s.queryWorkers))
	}
	return engine.New(pi, opts...)
}

// SetBackupRoot enables POST /admin/backup and confines its destinations
// to subdirectories of root. Until it is called the endpoint answers 403:
// accepting arbitrary server-side paths would let any client that can
// reach the API create directories and write store-content files anywhere
// the process can. Like the other Set* knobs, call it before the handler
// starts serving (pxmld wires it to -backup-dir).
func (s *Server) SetBackupRoot(root string) { s.backupRoot = root }

// SetDraining flips the readiness probe: a draining server answers 503
// on /readyz so load balancers stop routing to it, while in-flight and
// new requests still complete. Safe to call at any time.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports whether the server is draining.
func (s *Server) Draining() bool { return s.draining.Load() }

// Put stores an instance under a name, replacing any previous one. The
// instance must not be mutated afterwards. With the durable store
// backing the catalog, durability gates acceptance: a write the store
// rejects (degraded read-only mode, append failure) is not installed in
// memory either, so the served catalog never silently diverges from
// disk — the error matches store.ErrDegraded when the store has flipped
// read-only. In legacy flat-file mode the in-memory catalog is updated
// first and the error reports the persistence outcome.
func (s *Server) Put(name string, pi *core.ProbInstance) error {
	if s.persistent() && !validName(name) {
		return fmt.Errorf("server: name %q not storable (use [A-Za-z0-9_-])", name)
	}
	if s.store != nil {
		if err := s.store.Put(name, pi); err != nil {
			return err
		}
		s.mu.Lock()
		s.engines[name] = s.newEngine(name, pi)
		s.mu.Unlock()
		return nil
	}
	s.mu.Lock()
	s.engines[name] = s.newEngine(name, pi)
	s.mu.Unlock()
	return s.persist(name, pi)
}

// Get returns the named instance.
func (s *Server) Get(name string) (*core.ProbInstance, bool) {
	eng, ok := s.Engine(name)
	if !ok {
		return nil, false
	}
	return eng.Instance(), true
}

// Engine returns the named instance's query engine.
func (s *Server) Engine(name string) (*engine.Engine, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	eng, ok := s.engines[name]
	return eng, ok
}

// Delete removes the named instance, reporting whether it existed. Like
// Put, the durable store is consulted first: a degraded store rejects
// the delete (error matching store.ErrDegraded) and the instance stays
// served, rather than vanishing from memory only to resurrect from disk
// on the next restart.
func (s *Server) Delete(name string) (bool, error) {
	if s.store != nil {
		if err := s.store.Delete(name); err != nil {
			return false, err
		}
	}
	s.mu.Lock()
	_, ok := s.engines[name]
	delete(s.engines, name)
	s.mu.Unlock()
	// Bump the version so any future engine for this name starts under a
	// fresh cache prefix; the dropped engine's entries are already
	// unreachable and will age out of the LRU.
	s.version.Add(1)
	if ok && s.store == nil {
		s.unpersist(name)
	}
	return ok, nil
}

// Close releases the persistence backend (flushing the WAL when the
// store is in use). The catalog keeps serving from memory afterwards, but
// further writes are no longer durable.
func (s *Server) Close() error {
	if s.store != nil {
		return s.store.Close()
	}
	return nil
}

// persistent reports whether stored names must map to durable artifacts,
// and hence are restricted to [A-Za-z0-9_-]+.
func (s *Server) persistent() bool { return s.store != nil || s.dir != "" }

// Names returns the stored names, sorted.
func (s *Server) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.engines))
	for n := range s.engines {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Handler returns the HTTP handler for the catalog. API routes run under
// the full hardening stack — request metrics, optional structured
// logging, panic recovery, the in-flight limiter, and the per-request
// deadline. The /healthz and /readyz probes sit outside the limiter and
// deadline so they keep answering when the API is saturated.
func (s *Server) Handler() http.Handler {
	api := http.NewServeMux()
	api.HandleFunc("GET /instances", s.handleList)
	api.HandleFunc("PUT /instances/{name}", s.handlePut)
	api.HandleFunc("GET /instances/{name}", s.handleGet)
	api.HandleFunc("DELETE /instances/{name}", s.handleDelete)
	api.HandleFunc("GET /instances/{name}/dot", s.handleDot)
	api.HandleFunc("POST /instances/{name}/query", s.handleQuery)
	api.HandleFunc("POST /instances/{name}/batch", s.handleBatch)
	api.HandleFunc("GET /metrics", s.handleMetrics)
	api.HandleFunc("POST /admin/backup", s.handleBackup)
	api.HandleFunc("POST /admin/scrub", s.handleScrub)

	root := http.NewServeMux()
	root.HandleFunc("GET /healthz", s.handleHealthz)
	root.HandleFunc("GET /readyz", s.handleReadyz)
	root.Handle("/", s.limitInflight(s.withDeadline(api)))
	return s.instrument(s.recoverPanics(root))
}

// statusRecorder captures the status code and body size a handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	n, err := r.ResponseWriter.Write(b)
	r.bytes += n
	return n, err
}

// recoverPanics converts a handler panic into a 500 (when the response
// has not started) plus a counter and a log line, so one bad request
// cannot take down the daemon. http.ErrAbortHandler keeps its meaning.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				panic(v)
			}
			s.panics.Inc()
			if s.log != nil {
				s.log.Error("handler panic",
					"method", r.Method, "path", r.URL.Path,
					"panic", fmt.Sprint(v), "stack", string(debug.Stack()))
			}
			if rec, ok := w.(*statusRecorder); !ok || !rec.wrote {
				httpError(w, http.StatusInternalServerError, fmt.Errorf("internal error"))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// limitInflight sheds requests beyond the SetMaxInflight cap with 429 +
// Retry-After instead of queueing without bound: under overload it is
// better to fail a few requests fast than to slow every request down.
func (s *Server) limitInflight(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.sem == nil {
			next.ServeHTTP(w, r)
			return
		}
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
			next.ServeHTTP(w, r)
		default:
			s.shed.Inc()
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, fmt.Errorf("server overloaded (%d requests in flight), retry later", cap(s.sem)))
		}
	})
}

// withDeadline bounds the request with SetRequestTimeout via the context
// every engine call already honors; an expired deadline surfaces as 503
// through overloadStatus.
func (s *Server) withDeadline(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.reqTimeout <= 0 {
			next.ServeHTTP(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.started).Seconds(),
	})
}

// handleReadyz reports whether this server should receive traffic: not
// while draining for shutdown, and not ready for writes once the store
// has degraded (readiness is the operator's signal to fail over).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	if s.store != nil {
		if h := s.store.Health(); h.Degraded {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"status": "degraded",
				"reason": h.Reason,
			})
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

// instrument wraps the mux with request counting, latency observation and
// optional structured logging.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		s.inflight.Inc()
		defer s.inflight.Dec()
		next.ServeHTTP(rec, r)
		d := time.Since(start)
		s.requests.Inc()
		s.latency.Observe(d)
		if rec.status >= 400 {
			s.errors.Inc()
		}
		if s.log != nil {
			s.log.Info("request",
				"method", r.Method,
				"path", r.URL.Path,
				"status", rec.status,
				"bytes", rec.bytes,
				"duration_ms", float64(d)/float64(time.Millisecond),
				"remote", r.RemoteAddr,
			)
		}
	})
}

type listEntry struct {
	Name    string `json:"name"`
	Root    string `json:"root"`
	Objects int    `json:"objects"`
	Edges   int    `json:"edges"`
	Depth   int    `json:"depth"`
	Tree    bool   `json:"tree"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	engines := make(map[string]*engine.Engine, len(s.engines))
	for name, eng := range s.engines {
		engines[name] = eng
	}
	s.mu.RUnlock()
	entries := make([]listEntry, 0, len(engines))
	for name, eng := range engines {
		pi := eng.Instance()
		st := pi.ComputeStats()
		entries = append(entries, listEntry{
			Name: name, Root: pi.Root(),
			Objects: st.Objects, Edges: st.Edges, Depth: st.Depth,
			Tree: eng.IsTree(),
		})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	writeJSON(w, http.StatusOK, entries)
}

// updateRuntimeGauges refreshes the Go runtime gauges in the server
// registry — heap occupancy, cumulative GC pause time, goroutine count —
// so /metrics always reports a current reading.
func (s *Server) updateRuntimeGauges() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.reg.Gauge("runtime_heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	s.reg.Gauge("runtime_heap_sys_bytes").Set(int64(ms.HeapSys))
	s.reg.Gauge("runtime_gc_pause_total_ns").Set(int64(ms.PauseTotalNs))
	s.reg.Gauge("runtime_num_gc").Set(int64(ms.NumGC))
	s.reg.Gauge("runtime_goroutines").Set(int64(runtime.NumGoroutine()))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.updateRuntimeGauges()
	s.mu.RLock()
	insts := make(map[string]any, len(s.engines))
	for name, eng := range s.engines {
		insts[name] = eng.Metrics()
	}
	s.mu.RUnlock()
	payload := map[string]any{
		"server":       s.reg.Snapshot(),
		"uptime_s":     time.Since(s.started).Seconds(),
		"instances":    insts,
		"result_cache": s.results.Stats(),
	}
	if s.store != nil {
		payload["store"] = map[string]any{
			"dir":       s.store.Dir(),
			"wal_bytes": s.store.WALSize(),
			"instances": s.store.Len(),
			"health":    s.store.Health(),
		}
	}
	writeJSON(w, http.StatusOK, payload)
}

// writeErrStatus maps a persistence-write failure to its HTTP status:
// writes against a degraded (read-only) store are 503 — the condition is
// the server's, not the request's — anything else stays a 500.
func writeErrStatus(err error) int {
	if errors.Is(err, store.ErrDegraded) {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// overloadStatus maps a query failure to its HTTP status: an expired
// per-request deadline (or a caller that went away) is 503 so clients
// and load balancers treat it as server pressure, not statement error.
func overloadStatus(err error) int {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return http.StatusServiceUnavailable
	}
	return http.StatusUnprocessableEntity
}

// decodeStatus maps a body-read/decode error to its HTTP status: oversized
// bodies (cut off by MaxBytesReader) are 413, anything else 400.
func decodeStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// Read fully before decoding so an oversized body is always reported
	// as 413 rather than as whatever parse error the truncation causes.
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		httpError(w, decodeStatus(err), err)
		return
	}
	var pi *core.ProbInstance
	if strings.Contains(r.Header.Get("Content-Type"), "json") {
		pi, err = codec.DecodeJSON(bytes.NewReader(raw))
	} else {
		pi, err = codec.DecodeText(bytes.NewReader(raw))
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := pi.ValidateLite(); err != nil {
		httpError(w, http.StatusUnprocessableEntity, fmt.Errorf("instance invalid: %w", err))
		return
	}
	if s.persistent() && !validName(name) {
		httpError(w, http.StatusBadRequest, fmt.Errorf("name %q not storable (use [A-Za-z0-9_-])", name))
		return
	}
	if err := s.Put(name, pi); err != nil {
		httpError(w, writeErrStatus(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"name": name, "objects": pi.NumObjects()})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	pi, ok := s.Get(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no instance %q", r.PathValue("name")))
		return
	}
	if strings.Contains(r.Header.Get("Accept"), "json") {
		w.Header().Set("Content-Type", "application/json")
		if err := codec.EncodeJSON(w, pi); err != nil {
			httpError(w, http.StatusInternalServerError, err)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := codec.EncodeText(w, pi); err != nil {
		httpError(w, http.StatusInternalServerError, err)
	}
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	ok, err := s.Delete(r.PathValue("name"))
	if err != nil {
		httpError(w, writeErrStatus(err), err)
		return
	}
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no instance %q", r.PathValue("name")))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleBackup takes an online backup of the durable store into a
// subdirectory of the configured backup root named by the request. The
// client chooses only the name; the server chooses the filesystem
// location, and the endpoint is disabled entirely until SetBackupRoot —
// an unrestricted destination would be a filesystem-write primitive for
// anyone who can reach the API. The destination must be empty or absent;
// writes keep flowing while the backup is cut (see store.Backup). The
// response is the backup's manifest — everything a later pxmlbackup
// verify/restore needs to know about what was captured.
func (s *Server) handleBackup(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		httpError(w, http.StatusConflict, fmt.Errorf("server has no durable store to back up"))
		return
	}
	if s.backupRoot == "" {
		httpError(w, http.StatusForbidden, fmt.Errorf("backup endpoint disabled: no backup root configured (start pxmld with -backup-dir)"))
		return
	}
	var req struct {
		Dir string `json:"dir"`
	}
	req.Dir = r.URL.Query().Get("dir")
	if r.Body != nil && req.Dir == "" {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxStatementBytes))
		if err != nil {
			httpError(w, decodeStatus(err), err)
			return
		}
		if len(body) > 0 {
			if err := json.Unmarshal(body, &req); err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("decode backup request: %w", err))
				return
			}
		}
	}
	if req.Dir == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("backup needs a destination name (?dir= or JSON {\"dir\": ...}) relative to the server's backup root"))
		return
	}
	dest, err := resolveBackupDir(s.backupRoot, req.Dir)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	man, err := s.store.Backup(dest)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	if s.log != nil {
		s.log.Info("backup complete", "dir", dest, "instances", man.Instances, "pos", man.Pos.String())
	}
	writeJSON(w, http.StatusOK, man)
}

// resolveBackupDir maps a client-supplied backup name onto a directory
// under root, rejecting anything that could land outside it: absolute
// paths, any ".." component, or a name that resolves to the root itself.
func resolveBackupDir(root, name string) (string, error) {
	if filepath.IsAbs(name) {
		return "", fmt.Errorf("backup destination %q must be relative to the server's backup root", name)
	}
	clean := filepath.Clean(name)
	if clean == "." || clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("backup destination %q escapes the server's backup root", name)
	}
	return filepath.Join(root, clean), nil
}

// handleScrub runs a synchronous full verification pass over the store's
// at-rest files. Corruption degrades the store (readyz flips) and comes
// back as a 500 so the caller knows restoration is now the job at hand.
func (s *Server) handleScrub(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		httpError(w, http.StatusConflict, fmt.Errorf("server has no durable store to scrub"))
		return
	}
	if err := s.store.Scrub(); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	h := s.store.Health()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       "ok",
		"scrub_passes": h.ScrubPasses,
	})
}

func (s *Server) handleDot(w http.ResponseWriter, r *http.Request) {
	pi, ok := s.Get(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no instance %q", r.PathValue("name")))
		return
	}
	w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
	io.WriteString(w, dot.Weak(pi))
}

type queryResponse struct {
	Text   string   `json:"text"`
	Prob   *float64 `json:"prob,omitempty"`
	Stored string   `json:"stored,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	eng, ok := s.Engine(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no instance %q", r.PathValue("name")))
		return
	}
	stmt, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxStatementBytes))
	if err != nil {
		httpError(w, decodeStatus(err), err)
		return
	}
	res, err := eng.Run(r.Context(), string(stmt))
	if err != nil {
		httpError(w, overloadStatus(err), err)
		return
	}
	resp := queryResponse{Text: res.Text, Prob: res.Prob}
	if store := r.URL.Query().Get("store"); store != "" {
		if res.Instance == nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("statement produced no instance to store"))
			return
		}
		if s.persistent() && !validName(store) {
			httpError(w, http.StatusBadRequest, fmt.Errorf("name %q not storable (use [A-Za-z0-9_-])", store))
			return
		}
		if err := s.Put(store, res.Instance); err != nil {
			httpError(w, writeErrStatus(err), err)
			return
		}
		resp.Stored = store
	}
	writeJSON(w, http.StatusOK, resp)
}

type batchEntry struct {
	Statement string   `json:"statement"`
	Text      string   `json:"text,omitempty"`
	Prob      *float64 `json:"prob,omitempty"`
	Error     string   `json:"error,omitempty"`
}

// handleBatch evaluates many statements (one per non-blank line) against
// one instance, fanning them out over the engine's bounded worker pool.
// Per-statement failures are reported inline so one bad statement doesn't
// void the rest.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	eng, ok := s.Engine(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no instance %q", r.PathValue("name")))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxStatementBytes))
	if err != nil {
		httpError(w, decodeStatus(err), err)
		return
	}
	var stmts []string
	for _, line := range strings.Split(string(body), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			stmts = append(stmts, line)
		}
	}
	if len(stmts) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	results := eng.RunBatch(r.Context(), stmts)
	out := make([]batchEntry, len(results))
	for i, br := range results {
		out[i].Statement = stmts[i]
		if br.Err != nil {
			out[i].Error = br.Err.Error()
			continue
		}
		out[i].Text = br.Result.Text
		out[i].Prob = br.Result.Prob
	}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// NewPersistent returns a catalog backed by the durable storage engine
// in dir: writes go through a write-ahead log with periodic snapshots,
// and startup runs crash recovery (replaying snapshot-then-WAL,
// quarantining corrupt records, truncating torn tails). A directory in
// the legacy flat-file layout is migrated on first open. Names are
// restricted to [A-Za-z0-9_-]+ to keep durable artifacts unambiguous.
func NewPersistent(dir string) (*Server, error) {
	s, _, err := NewWithStore(dir, store.Options{})
	return s, err
}

// NewWithStore is NewPersistent with explicit store options, also
// returning the crash-recovery report. The server's metrics registry is
// installed into the options so store counters surface under /metrics.
func NewWithStore(dir string, opts store.Options) (*Server, *store.RecoveryReport, error) {
	s := New()
	if opts.Registry == nil {
		opts.Registry = s.reg
	}
	st, report, err := store.Open(dir, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("server: opening store: %w", err)
	}
	s.store = st
	for name, pi := range st.All() {
		s.engines[name] = s.newEngine(name, pi)
	}
	return s, report, nil
}

// NewPersistentFiles returns a catalog backed by the legacy flat-file
// layout: every stored instance is written to <dir>/<name>.pxml (text
// encoding, fsynced and atomically renamed), deletes remove the file,
// and all existing files are loaded at startup. A file that fails to
// decode does not abort startup: it is logged and quarantined to
// <name>.pxml.corrupt. Names are restricted to [A-Za-z0-9_-]+ to keep
// the file mapping unambiguous.
func NewPersistentFiles(dir string) (*Server, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: creating data dir: %w", err)
	}
	s := New()
	s.dir = dir
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("server: reading data dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".pxml") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".pxml")
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		pi, err := codec.DecodeText(f)
		f.Close()
		if err != nil {
			// One damaged file must not take the whole catalog down:
			// set it aside for inspection and keep loading the rest.
			corrupt := path + ".corrupt"
			if rerr := os.Rename(path, corrupt); rerr != nil {
				return nil, fmt.Errorf("server: quarantining corrupt %s: %w", e.Name(), rerr)
			}
			slog.Warn("corrupt instance file quarantined",
				"file", path, "quarantined_to", corrupt, "error", err)
			continue
		}
		s.engines[name] = s.newEngine(name, pi)
	}
	return s, nil
}

// validName reports whether a name is safe for persistent storage.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// persist writes the named instance to disk when legacy flat-file
// persistence is enabled. The temp file is fsynced before the rename and
// the directory entry after it; without both, a crash shortly after Put
// could leave a zero-length or unlinked file despite the rename being
// "atomic".
func (s *Server) persist(name string, pi *core.ProbInstance) error {
	if s.dir == "" {
		return nil
	}
	if !validName(name) {
		return fmt.Errorf("server: name %q not storable (use [A-Za-z0-9_-])", name)
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := codec.EncodeText(tmp, pi); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, name+".pxml")); err != nil {
		return err
	}
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// unpersist removes the named instance's file when persistence is enabled.
func (s *Server) unpersist(name string) {
	if s.dir == "" || !validName(name) {
		return
	}
	_ = os.Remove(filepath.Join(s.dir, name+".pxml"))
}

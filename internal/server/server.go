// Package server exposes a catalog of named probabilistic instances over
// HTTP, turning the PXML library into a small probabilistic
// semistructured database service:
//
//	GET    /instances                 list instances with summary stats
//	PUT    /instances/{name}          store an instance (text or JSON body)
//	GET    /instances/{name}          fetch an instance (Accept: application/json for JSON)
//	DELETE /instances/{name}          drop an instance
//	GET    /instances/{name}/dot      Graphviz rendering of the weak graph
//	POST   /instances/{name}/query    execute one pxql statement (text body);
//	                                  ?store=<new> keeps an instance-valued
//	                                  result in the catalog under that name
//	POST   /instances/{name}/batch    execute many statements (one per line)
//	                                  concurrently over the engine's pool
//	GET    /metrics                   JSON snapshot: server counters plus
//	                                  per-instance engine metrics
//
// Query responses are JSON: {"text": ..., "prob": ..., "stored": ...}.
// Errors are structured JSON: {"error": ...} with the matching status code
// (400 malformed, 404 unknown, 413 oversized body, 422 invalid instance or
// failing statement).
//
// Each stored instance is wrapped in an engine.Engine, so repeated queries
// against the same instance reuse its cached path index, compiled Bayesian
// network, and marginals, and every request is counted in that engine's
// metrics. The catalog is safe for concurrent use; instances are immutable
// once stored (queries never mutate their input — algebra results are
// fresh instances).
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"pxml/internal/codec"
	"pxml/internal/core"
	"pxml/internal/dot"
	"pxml/internal/engine"
	"pxml/internal/metrics"
	"pxml/internal/store"
)

// defaultMaxBody bounds instance-upload bodies unless SetMaxBody overrides.
const defaultMaxBody = 64 << 20

// maxStatementBytes bounds a single pxql statement (or batch) body.
const maxStatementBytes = 1 << 20

// Server is a concurrency-safe catalog of named query engines, optionally
// backed by the durable storage engine (see NewPersistent) or, for the
// legacy layout, by a directory of flat text files (NewPersistentFiles).
type Server struct {
	mu      sync.RWMutex
	engines map[string]*engine.Engine
	store   *store.Store // log-structured persistence; nil unless NewPersistent/NewWithStore
	dir     string       // legacy flat-file persistence; "" unless NewPersistentFiles
	maxBody int64
	log     *slog.Logger

	reg      *metrics.Registry
	requests *metrics.Counter
	errors   *metrics.Counter
	latency  *metrics.Histogram
}

// New returns an empty catalog. Request logging is off until SetLogger.
func New() *Server {
	s := &Server{
		engines: make(map[string]*engine.Engine),
		maxBody: defaultMaxBody,
		reg:     metrics.NewRegistry(),
	}
	s.requests = s.reg.Counter("http_requests")
	s.errors = s.reg.Counter("http_errors")
	s.latency = s.reg.Histogram("http_latency")
	return s
}

// SetLogger enables structured request logging through l (nil disables).
func (s *Server) SetLogger(l *slog.Logger) { s.log = l }

// SetMaxBody overrides the instance-upload size limit (bytes). Intended
// for tests and memory-constrained deployments.
func (s *Server) SetMaxBody(n int64) {
	if n > 0 {
		s.maxBody = n
	}
}

// Put stores an instance under a name, replacing any previous one. The
// instance must not be mutated afterwards. The returned error is the
// persistence outcome; the in-memory store is always updated first, so on
// error the instance is served but not durable.
func (s *Server) Put(name string, pi *core.ProbInstance) error {
	if s.persistent() && !validName(name) {
		return fmt.Errorf("server: name %q not storable (use [A-Za-z0-9_-])", name)
	}
	eng := engine.New(pi)
	s.mu.Lock()
	s.engines[name] = eng
	s.mu.Unlock()
	if s.store != nil {
		return s.store.Put(name, pi)
	}
	return s.persist(name, pi)
}

// Get returns the named instance.
func (s *Server) Get(name string) (*core.ProbInstance, bool) {
	eng, ok := s.Engine(name)
	if !ok {
		return nil, false
	}
	return eng.Instance(), true
}

// Engine returns the named instance's query engine.
func (s *Server) Engine(name string) (*engine.Engine, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	eng, ok := s.engines[name]
	return eng, ok
}

// Delete removes the named instance, reporting whether it existed.
func (s *Server) Delete(name string) bool {
	s.mu.Lock()
	_, ok := s.engines[name]
	delete(s.engines, name)
	s.mu.Unlock()
	if ok {
		if s.store != nil {
			if err := s.store.Delete(name); err != nil && s.log != nil {
				s.log.Error("delete not persisted", "name", name, "error", err)
			}
		} else {
			s.unpersist(name)
		}
	}
	return ok
}

// Close releases the persistence backend (flushing the WAL when the
// store is in use). The catalog keeps serving from memory afterwards, but
// further writes are no longer durable.
func (s *Server) Close() error {
	if s.store != nil {
		return s.store.Close()
	}
	return nil
}

// persistent reports whether stored names must map to durable artifacts,
// and hence are restricted to [A-Za-z0-9_-]+.
func (s *Server) persistent() bool { return s.store != nil || s.dir != "" }

// Names returns the stored names, sorted.
func (s *Server) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.engines))
	for n := range s.engines {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Handler returns the HTTP handler for the catalog, with request metrics
// and (when SetLogger was called) structured logging applied to every
// route.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /instances", s.handleList)
	mux.HandleFunc("PUT /instances/{name}", s.handlePut)
	mux.HandleFunc("GET /instances/{name}", s.handleGet)
	mux.HandleFunc("DELETE /instances/{name}", s.handleDelete)
	mux.HandleFunc("GET /instances/{name}/dot", s.handleDot)
	mux.HandleFunc("POST /instances/{name}/query", s.handleQuery)
	mux.HandleFunc("POST /instances/{name}/batch", s.handleBatch)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.instrument(mux)
}

// statusRecorder captures the status code and body size a handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	n, err := r.ResponseWriter.Write(b)
	r.bytes += n
	return n, err
}

// instrument wraps the mux with request counting, latency observation and
// optional structured logging.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		d := time.Since(start)
		s.requests.Inc()
		s.latency.Observe(d)
		if rec.status >= 400 {
			s.errors.Inc()
		}
		if s.log != nil {
			s.log.Info("request",
				"method", r.Method,
				"path", r.URL.Path,
				"status", rec.status,
				"bytes", rec.bytes,
				"duration_ms", float64(d)/float64(time.Millisecond),
				"remote", r.RemoteAddr,
			)
		}
	})
}

type listEntry struct {
	Name    string `json:"name"`
	Root    string `json:"root"`
	Objects int    `json:"objects"`
	Edges   int    `json:"edges"`
	Depth   int    `json:"depth"`
	Tree    bool   `json:"tree"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	engines := make(map[string]*engine.Engine, len(s.engines))
	for name, eng := range s.engines {
		engines[name] = eng
	}
	s.mu.RUnlock()
	entries := make([]listEntry, 0, len(engines))
	for name, eng := range engines {
		pi := eng.Instance()
		st := pi.ComputeStats()
		entries = append(entries, listEntry{
			Name: name, Root: pi.Root(),
			Objects: st.Objects, Edges: st.Edges, Depth: st.Depth,
			Tree: eng.IsTree(),
		})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	writeJSON(w, http.StatusOK, entries)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	insts := make(map[string]any, len(s.engines))
	for name, eng := range s.engines {
		insts[name] = eng.Metrics()
	}
	s.mu.RUnlock()
	payload := map[string]any{
		"server":    s.reg.Snapshot(),
		"instances": insts,
	}
	if s.store != nil {
		payload["store"] = map[string]any{
			"dir":       s.store.Dir(),
			"wal_bytes": s.store.WALSize(),
			"instances": s.store.Len(),
		}
	}
	writeJSON(w, http.StatusOK, payload)
}

// decodeStatus maps a body-read/decode error to its HTTP status: oversized
// bodies (cut off by MaxBytesReader) are 413, anything else 400.
func decodeStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// Read fully before decoding so an oversized body is always reported
	// as 413 rather than as whatever parse error the truncation causes.
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		httpError(w, decodeStatus(err), err)
		return
	}
	var pi *core.ProbInstance
	if strings.Contains(r.Header.Get("Content-Type"), "json") {
		pi, err = codec.DecodeJSON(bytes.NewReader(raw))
	} else {
		pi, err = codec.DecodeText(bytes.NewReader(raw))
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := pi.ValidateLite(); err != nil {
		httpError(w, http.StatusUnprocessableEntity, fmt.Errorf("instance invalid: %w", err))
		return
	}
	if s.persistent() && !validName(name) {
		httpError(w, http.StatusBadRequest, fmt.Errorf("name %q not storable (use [A-Za-z0-9_-])", name))
		return
	}
	if err := s.Put(name, pi); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"name": name, "objects": pi.NumObjects()})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	pi, ok := s.Get(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no instance %q", r.PathValue("name")))
		return
	}
	if strings.Contains(r.Header.Get("Accept"), "json") {
		w.Header().Set("Content-Type", "application/json")
		if err := codec.EncodeJSON(w, pi); err != nil {
			httpError(w, http.StatusInternalServerError, err)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := codec.EncodeText(w, pi); err != nil {
		httpError(w, http.StatusInternalServerError, err)
	}
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !s.Delete(r.PathValue("name")) {
		httpError(w, http.StatusNotFound, fmt.Errorf("no instance %q", r.PathValue("name")))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleDot(w http.ResponseWriter, r *http.Request) {
	pi, ok := s.Get(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no instance %q", r.PathValue("name")))
		return
	}
	w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
	io.WriteString(w, dot.Weak(pi))
}

type queryResponse struct {
	Text   string   `json:"text"`
	Prob   *float64 `json:"prob,omitempty"`
	Stored string   `json:"stored,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	eng, ok := s.Engine(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no instance %q", r.PathValue("name")))
		return
	}
	stmt, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxStatementBytes))
	if err != nil {
		httpError(w, decodeStatus(err), err)
		return
	}
	res, err := eng.Run(r.Context(), string(stmt))
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	resp := queryResponse{Text: res.Text, Prob: res.Prob}
	if store := r.URL.Query().Get("store"); store != "" {
		if res.Instance == nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("statement produced no instance to store"))
			return
		}
		if s.persistent() && !validName(store) {
			httpError(w, http.StatusBadRequest, fmt.Errorf("name %q not storable (use [A-Za-z0-9_-])", store))
			return
		}
		if err := s.Put(store, res.Instance); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		resp.Stored = store
	}
	writeJSON(w, http.StatusOK, resp)
}

type batchEntry struct {
	Statement string   `json:"statement"`
	Text      string   `json:"text,omitempty"`
	Prob      *float64 `json:"prob,omitempty"`
	Error     string   `json:"error,omitempty"`
}

// handleBatch evaluates many statements (one per non-blank line) against
// one instance, fanning them out over the engine's bounded worker pool.
// Per-statement failures are reported inline so one bad statement doesn't
// void the rest.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	eng, ok := s.Engine(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no instance %q", r.PathValue("name")))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxStatementBytes))
	if err != nil {
		httpError(w, decodeStatus(err), err)
		return
	}
	var stmts []string
	for _, line := range strings.Split(string(body), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			stmts = append(stmts, line)
		}
	}
	if len(stmts) == 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	results := eng.RunBatch(r.Context(), stmts)
	out := make([]batchEntry, len(results))
	for i, br := range results {
		out[i].Statement = stmts[i]
		if br.Err != nil {
			out[i].Error = br.Err.Error()
			continue
		}
		out[i].Text = br.Result.Text
		out[i].Prob = br.Result.Prob
	}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// NewPersistent returns a catalog backed by the durable storage engine
// in dir: writes go through a write-ahead log with periodic snapshots,
// and startup runs crash recovery (replaying snapshot-then-WAL,
// quarantining corrupt records, truncating torn tails). A directory in
// the legacy flat-file layout is migrated on first open. Names are
// restricted to [A-Za-z0-9_-]+ to keep durable artifacts unambiguous.
func NewPersistent(dir string) (*Server, error) {
	s, _, err := NewWithStore(dir, store.Options{})
	return s, err
}

// NewWithStore is NewPersistent with explicit store options, also
// returning the crash-recovery report. The server's metrics registry is
// installed into the options so store counters surface under /metrics.
func NewWithStore(dir string, opts store.Options) (*Server, *store.RecoveryReport, error) {
	s := New()
	if opts.Registry == nil {
		opts.Registry = s.reg
	}
	st, report, err := store.Open(dir, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("server: opening store: %w", err)
	}
	s.store = st
	for name, pi := range st.All() {
		s.engines[name] = engine.New(pi)
	}
	return s, report, nil
}

// NewPersistentFiles returns a catalog backed by the legacy flat-file
// layout: every stored instance is written to <dir>/<name>.pxml (text
// encoding, fsynced and atomically renamed), deletes remove the file,
// and all existing files are loaded at startup. A file that fails to
// decode does not abort startup: it is logged and quarantined to
// <name>.pxml.corrupt. Names are restricted to [A-Za-z0-9_-]+ to keep
// the file mapping unambiguous.
func NewPersistentFiles(dir string) (*Server, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: creating data dir: %w", err)
	}
	s := New()
	s.dir = dir
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("server: reading data dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".pxml") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".pxml")
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		pi, err := codec.DecodeText(f)
		f.Close()
		if err != nil {
			// One damaged file must not take the whole catalog down:
			// set it aside for inspection and keep loading the rest.
			corrupt := path + ".corrupt"
			if rerr := os.Rename(path, corrupt); rerr != nil {
				return nil, fmt.Errorf("server: quarantining corrupt %s: %w", e.Name(), rerr)
			}
			slog.Warn("corrupt instance file quarantined",
				"file", path, "quarantined_to", corrupt, "error", err)
			continue
		}
		s.engines[name] = engine.New(pi)
	}
	return s, nil
}

// validName reports whether a name is safe for persistent storage.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// persist writes the named instance to disk when legacy flat-file
// persistence is enabled. The temp file is fsynced before the rename and
// the directory entry after it; without both, a crash shortly after Put
// could leave a zero-length or unlinked file despite the rename being
// "atomic".
func (s *Server) persist(name string, pi *core.ProbInstance) error {
	if s.dir == "" {
		return nil
	}
	if !validName(name) {
		return fmt.Errorf("server: name %q not storable (use [A-Za-z0-9_-])", name)
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := codec.EncodeText(tmp, pi); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, name+".pxml")); err != nil {
		return err
	}
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// unpersist removes the named instance's file when persistence is enabled.
func (s *Server) unpersist(name string) {
	if s.dir == "" || !validName(name) {
		return
	}
	_ = os.Remove(filepath.Join(s.dir, name+".pxml"))
}

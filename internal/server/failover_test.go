package server

// Failover suite: the promote/demote/epoch admin surface, epoch-fenced
// split-brain prevention, post-promotion redirect retargeting, the
// flag-gated auto-promotion monitor end to end, and the headline chaos
// scenario — kill the leader mid-write-storm, promote a follower,
// restart the old leader — asserting zero acknowledged-write loss, no
// dual-epoch acks, and byte-identical convergence.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"pxml/internal/repl"
)

// failoverCluster is a leader plus followers where every node sits
// behind its own swappable front, so each has a stable URL usable as
// AdvertiseURL/Peers config and survives process "kills" and restarts.
type failoverCluster struct {
	t *testing.T

	leader    *Server
	leaderCfg Config
	front     *leaderFront
	frontTS   *httptest.Server

	followers   []*Server
	followerCfg []Config
	fronts      []*leaderFront
	followerTS  []*httptest.Server
	followerDir []string
}

// newFailoverCluster starts a leader and n followers. Every node knows
// every other node's URL (Peers) and its own (AdvertiseURL).
func newFailoverCluster(t *testing.T, n int, failoverPriority int, failoverSilence time.Duration) *failoverCluster {
	t.Helper()
	c := &failoverCluster{t: t}

	// Allocate every URL first: nodes need each other's addresses in
	// their configs before any server exists.
	c.front = newLeaderFront(leaderDown)
	c.frontTS = httptest.NewServer(c.front)
	t.Cleanup(c.frontTS.Close)
	var urls []string
	for i := 0; i < n; i++ {
		front := newLeaderFront(leaderDown)
		ts := httptest.NewServer(front)
		t.Cleanup(ts.Close)
		c.fronts = append(c.fronts, front)
		c.followerTS = append(c.followerTS, ts)
		urls = append(urls, ts.URL)
	}

	c.leaderCfg = Config{
		StoreDir:      t.TempDir(),
		AdminToken:    clusterToken,
		AdvertiseURL:  c.frontTS.URL,
		Peers:         urls,
		ProbeInterval: 100 * time.Millisecond,
	}
	c.leader = MustNew(c.leaderCfg)
	t.Cleanup(func() { c.leader.Close() })
	c.front.swap(c.leader.Handler())

	for i := 0; i < n; i++ {
		dir := t.TempDir()
		peers := []string{c.frontTS.URL}
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		cfg := Config{
			StoreDir:         dir,
			AdminToken:       clusterToken,
			FollowLeader:     c.frontTS.URL,
			FollowToken:      clusterToken,
			ReplMaxStaleness: 2 * time.Second,
			ReplPollWait:     50 * time.Millisecond,
			AdvertiseURL:     urls[i],
			Peers:            peers,
			ProbeInterval:    100 * time.Millisecond,
		}
		if i == 0 && failoverPriority > 0 {
			cfg.FailoverPriority = failoverPriority
			cfg.FailoverSilence = failoverSilence
		}
		f := MustNew(cfg)
		t.Cleanup(func() { f.Close() })
		c.fronts[i].swap(f.Handler())
		c.followers = append(c.followers, f)
		c.followerCfg = append(c.followerCfg, cfg)
		c.followerDir = append(c.followerDir, dir)
	}
	return c
}

// authReq performs an authenticated request and returns status + body.
func authReq(t *testing.T, method, url, body string) (int, string) {
	t.Helper()
	var rd *strings.Reader
	if body != "" {
		rd = strings.NewReader(body)
	} else {
		rd = strings.NewReader("")
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+clusterToken)
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := noRedirect().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, rerr := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	return resp.StatusCode, sb.String()
}

// putEpoch PUTs an instance and returns (acked, epoch from the ack
// header). Unacknowledged writes (redirects, 5xx, transport errors)
// return acked=false.
func putEpoch(client *http.Client, url, name, text string) (bool, uint64) {
	req, err := http.NewRequest("PUT", url+"/v1/instances/"+name, strings.NewReader(text))
	if err != nil {
		return false, 0
	}
	req.Header.Set("Content-Type", "text/plain")
	resp, err := client.Do(req)
	if err != nil {
		return false, 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return false, 0
	}
	epoch, _ := strconv.ParseUint(resp.Header.Get(repl.HeaderEpoch), 10, 64)
	return true, epoch
}

func (c *failoverCluster) waitFollowerCaughtUp(i int) {
	c.t.Helper()
	waitFor(c.t, 15*time.Second, fmt.Sprintf("follower %d caught up", i), func() bool {
		st, ok := c.followers[i].ReplStatus()
		return ok && st.CaughtUp && !st.Diverged
	})
}

// sameWALBytes asserts the WAL segment files the two directories share
// are byte-identical (and that they share at least one).
func sameWALBytes(t *testing.T, dirA, dirB string) {
	t.Helper()
	segs := func(dir string) map[string][]byte {
		m := map[string][]byte{}
		paths, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range paths {
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			m[filepath.Base(p)] = data
		}
		return m
	}
	a, b := segs(dirA), segs(dirB)
	common := 0
	for name, da := range a {
		db, ok := b[name]
		if !ok {
			continue
		}
		common++
		if string(da) != string(db) {
			t.Errorf("WAL segment %s differs between %s and %s (%d vs %d bytes)", name, dirA, dirB, len(da), len(db))
		}
	}
	if common == 0 {
		t.Errorf("no common WAL segments between %s and %s", dirA, dirB)
	}
}

// replOnly exposes the replication read surface of a handler while the
// "process" is gone from the clients' point of view: the serving side
// of a leader whose load balancer already pulled it. Draining a
// promotion out of it works; acknowledging new client writes does not.
func replOnly(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/repl/") {
			h.ServeHTTP(w, r)
			return
		}
		http.Error(w, "leader unreachable", http.StatusServiceUnavailable)
	})
}

// TestFailoverChaos is the headline scenario: a write storm runs while
// the leader is cut off from clients, a follower is promoted (fully
// drained, epoch bumped), the old leader dies and later restarts, and
// the cluster re-forms around the new leader with zero acknowledged
// writes lost, strictly monotonic ack epochs, and byte-identical WALs.
func TestFailoverChaos(t *testing.T) {
	c := newFailoverCluster(t, 2, 0, 0)
	text := figure2Text(t)
	a, b := c.followers[0], c.followers[1]
	aURL := c.followerTS[0].URL

	// Write storm against a retargetable URL: starts at the leader,
	// repointed to the promoted follower after failover (clients follow
	// their load balancer; what matters is which acks survive).
	var storm struct {
		sync.Mutex
		target string
		acks   []struct {
			name  string
			epoch uint64
		}
	}
	storm.target = c.frontTS.URL
	stop := make(chan struct{})
	var wg sync.WaitGroup
	writer := &http.Client{Timeout: 2 * time.Second}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("storm-%d-%04d", w, i)
				storm.Lock()
				target := storm.target
				storm.Unlock()
				if ok, epoch := putEpoch(writer, target, name, text); ok {
					storm.Lock()
					storm.acks = append(storm.acks, struct {
						name  string
						epoch uint64
					}{name, epoch})
					storm.Unlock()
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(w)
	}

	// Let the storm land some epoch-1 writes, then cut the leader off
	// from clients mid-storm (its replication surface survives a little
	// longer — the realistic "LB pulled it / SIGTERM draining" window a
	// supervised failover drains through).
	waitFor(t, 10*time.Second, "some epoch-1 acks", func() bool {
		storm.Lock()
		defer storm.Unlock()
		return len(storm.acks) >= 10
	})
	c.front.swap(replOnly(c.leader.Handler()))

	// Promote follower A without force: the drain must finish and report
	// a zero gap.
	status, body := authReq(t, "POST", aURL+"/v1/admin/promote", "")
	if status != http.StatusOK {
		t.Fatalf("promote: %d %s", status, body)
	}
	var res promoteResult
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatalf("promote response %q: %v", body, err)
	}
	if res.Epoch != 2 || !res.Drained || res.GapBytes != 0 {
		t.Fatalf("promote result = %+v, want epoch 2, drained, zero gap", res)
	}

	// The old leader is now fully dead. Clients repoint to A.
	c.front.swap(leaderDown)
	c.leader.Close()
	storm.Lock()
	storm.target = aURL
	storm.Unlock()

	// A serves writes under epoch 2.
	waitFor(t, 10*time.Second, "epoch-2 acks on the new leader", func() bool {
		storm.Lock()
		defer storm.Unlock()
		return len(storm.acks) > 0 && storm.acks[len(storm.acks)-1].epoch == 2
	})

	// The old leader restarts from its surviving directory. Its startup
	// peer probe must fence it before it serves a single write...
	c.leader = MustNew(c.leaderCfg)
	c.front.swap(c.leader.Handler())
	if fenced, epoch, leader := c.leader.store.Fenced(); !fenced || epoch != 2 || leader != aURL {
		t.Fatalf("restarted old leader Fenced() = (%v, %d, %q), want fenced at 2 by %q", fenced, epoch, leader, aURL)
	}
	// ...307-ing writes to its successor,
	req, _ := http.NewRequest("PUT", c.frontTS.URL+"/v1/instances/zombie", strings.NewReader(text))
	resp, err := noRedirect().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("write to fenced ex-leader = %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != aURL+"/v1/instances/zombie" {
		t.Fatalf("fenced redirect Location = %q, want new leader", loc)
	}
	// ...and reporting itself not ready.
	if resp, rbody := do(t, "GET", c.frontTS.URL+"/readyz", "", ""); resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(rbody, "fenced") {
		t.Fatalf("fenced ex-leader readyz = %d %s, want 503 fenced", resp.StatusCode, rbody)
	}

	// Follower B, still pointed at the old leader, learns the successor
	// from the fenced 409 and retargets to A.
	waitFor(t, 15*time.Second, "follower B to retarget to A", func() bool {
		leader, ok := b.Follower()
		return ok && leader == aURL
	})
	// Satellite regression: B's 307s now derive from the live leader
	// URL, not the -follow value cached at construction.
	req, _ = http.NewRequest("PUT", c.followerTS[1].URL+"/v1/instances/via-b", strings.NewReader(text))
	resp, err = noRedirect().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("write via follower B = %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != aURL+"/v1/instances/via-b" {
		t.Fatalf("follower B redirect Location = %q, want %q (the NEW leader)", loc, aURL+"/v1/instances/via-b")
	}

	// Stop the storm and let B catch up with A.
	close(stop)
	wg.Wait()
	c.waitFollowerCaughtUp(1)
	waitFor(t, 15*time.Second, "B to reach A's position", func() bool {
		st, ok := b.ReplStatus()
		return ok && st.Pos == a.store.Pos()
	})

	// The old leader rejoins as a follower of A via bootstrap, on a
	// fresh directory (its fenced history stays quarantined).
	rejoinDir := t.TempDir()
	client := &repl.Client{BaseURL: aURL, Token: clusterToken}
	if _, err := client.Bootstrap(context.Background(), rejoinDir); err != nil {
		t.Fatalf("bootstrap rejoin: %v", err)
	}
	rejoined := MustNew(Config{
		StoreDir:         rejoinDir,
		FollowLeader:     aURL,
		FollowToken:      clusterToken,
		ReplMaxStaleness: 2 * time.Second,
		ReplPollWait:     50 * time.Millisecond,
	})
	defer rejoined.Close()
	// Bootstrap restores the data but deliberately not the EPOCH file;
	// the rejoined node adopts the current era from its first stream
	// exchange (a caught-up 204 suffices).
	waitFor(t, 15*time.Second, "rejoined node to reach A's position and epoch", func() bool {
		st, ok := rejoined.ReplStatus()
		return ok && !st.Diverged && st.Pos == a.store.Pos() && rejoined.store.Epoch() == 2
	})

	// Acceptance: zero acknowledged-write loss across the whole cluster.
	storm.Lock()
	acks := storm.acks
	storm.Unlock()
	if len(acks) == 0 {
		t.Fatal("storm acknowledged nothing")
	}
	var e1, e2 int
	for _, ack := range acks {
		switch ack.epoch {
		case 1:
			e1++
		case 2:
			e2++
		default:
			t.Fatalf("write %q acked under unexpected epoch %d", ack.name, ack.epoch)
		}
	}
	if e1 == 0 || e2 == 0 {
		t.Fatalf("storm must span both eras (epoch1=%d epoch2=%d acks)", e1, e2)
	}
	for _, node := range []*Server{a, b, rejoined} {
		for _, ack := range acks {
			if _, ok := node.store.Get(ack.name); !ok {
				t.Fatalf("acknowledged write %q (epoch %d) lost", ack.name, ack.epoch)
			}
		}
	}

	// No dual-epoch writes: once an epoch-2 ack exists, no epoch-1 ack
	// may follow it.
	sawE2 := false
	for _, ack := range acks {
		if ack.epoch == 2 {
			sawE2 = true
		} else if sawE2 {
			t.Fatalf("epoch-1 ack %q after the first epoch-2 ack: dual-epoch write window", ack.name)
		}
	}

	// Byte-identical convergence: A, B, and the rejoined node share the
	// same WAL bytes.
	sameWALBytes(t, c.followerDir[0], c.followerDir[1])
	sameWALBytes(t, c.followerDir[0], rejoinDir)
}

// TestFailoverMonitorAutoPromotes: a follower started with
// -failover-priority takes over by itself once the leader goes silent.
func TestFailoverMonitorAutoPromotes(t *testing.T) {
	c := newFailoverCluster(t, 1, 1, 400*time.Millisecond)
	text := figure2Text(t)
	if resp, body := do(t, "PUT", c.frontTS.URL+"/v1/instances/bib", text, "text/plain"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT: %d %s", resp.StatusCode, body)
	}
	c.waitFollowerCaughtUp(0)

	// Kill the leader outright. The monitor promotes with force after
	// one silence window (the drain cannot reach the dead leader, and a
	// presumed-dead leader must not block the failover).
	c.front.swap(leaderDown)
	c.leader.Close()
	f := c.followers[0]
	waitFor(t, 20*time.Second, "auto-promotion", func() bool {
		return !f.store.IsFollower()
	})
	if got := f.store.Epoch(); got != 2 {
		t.Fatalf("auto-promoted epoch = %d, want 2", got)
	}
	// The new leader serves writes.
	waitFor(t, 10*time.Second, "writes on the new leader", func() bool {
		ok, epoch := putEpoch(http.DefaultClient, c.followerTS[0].URL, "post-failover", text)
		return ok && epoch == 2
	})
}

// TestPromoteDemoteEndpointValidation covers the admin surface's error
// contract.
func TestPromoteDemoteEndpointValidation(t *testing.T) {
	c := newFailoverCluster(t, 1, 0, 0)
	leaderURL, followerURL := c.frontTS.URL, c.followerTS[0].URL

	// Promote requires the bearer token.
	if resp, _ := do(t, "POST", followerURL+"/v1/admin/promote", "", ""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated promote = %d, want 401", resp.StatusCode)
	}
	// Promoting a leader is a typed 409.
	status, body := authReq(t, "POST", leaderURL+"/v1/admin/promote", "")
	if status != http.StatusConflict || !strings.Contains(body, "not_follower") {
		t.Fatalf("promote on leader = %d %s, want 409 not_follower", status, body)
	}
	// Demote validation: missing epoch, stale epoch, follower target.
	status, body = authReq(t, "POST", leaderURL+"/v1/admin/demote", `{}`)
	if status != http.StatusBadRequest {
		t.Fatalf("demote without epoch = %d %s, want 400", status, body)
	}
	status, body = authReq(t, "POST", leaderURL+"/v1/admin/demote", `{"epoch":1,"leader":"http://usurper"}`)
	if status != http.StatusConflict || !strings.Contains(body, "not superseded") {
		t.Fatalf("demote at own epoch = %d %s, want 409 refusal", status, body)
	}
	status, body = authReq(t, "POST", followerURL+"/v1/admin/demote", `{"epoch":9}`)
	if status != http.StatusConflict || !strings.Contains(body, "already a follower") {
		t.Fatalf("demote on follower = %d %s, want 409", status, body)
	}

	// The epoch probe names each node's role and era.
	status, body = authReq(t, "GET", leaderURL+repl.EpochPath, "")
	if status != http.StatusOK || !strings.Contains(body, `"role":"leader"`) || !strings.Contains(body, `"epoch":1`) {
		t.Fatalf("leader epoch probe = %d %s", status, body)
	}
	status, body = authReq(t, "GET", followerURL+repl.EpochPath, "")
	if status != http.StatusOK || !strings.Contains(body, `"role":"follower"`) {
		t.Fatalf("follower epoch probe = %d %s", status, body)
	}

	// A legitimate demote fences the leader and reports the new state.
	status, body = authReq(t, "POST", leaderURL+"/v1/admin/demote", `{"epoch":7,"leader":"`+followerURL+`"}`)
	if status != http.StatusOK || !strings.Contains(body, `"role":"fenced"`) || !strings.Contains(body, `"epoch":7`) {
		t.Fatalf("valid demote = %d %s, want fenced at 7", status, body)
	}
	if err := c.leader.store.Put("nope", nil); err == nil {
		t.Fatal("fenced leader accepted a local write")
	}
	// Metrics reflect the fenced role.
	if _, mbody := do(t, "GET", leaderURL+"/v1/metrics", "", ""); !strings.Contains(mbody, `"role":"fenced"`) {
		t.Errorf("fenced leader metrics: %s", mbody)
	}
}

// TestPromoteNonForceAbortsWhenLeaderUnreachable: without force, a
// promotion that cannot drain the old leader rolls back to following
// and reports the gap; with force it proceeds.
func TestPromoteNonForceAbortsWhenLeaderUnreachable(t *testing.T) {
	c := newFailoverCluster(t, 1, 0, 0)
	text := figure2Text(t)
	if resp, body := do(t, "PUT", c.frontTS.URL+"/v1/instances/bib", text, "text/plain"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT: %d %s", resp.StatusCode, body)
	}
	c.waitFollowerCaughtUp(0)
	c.front.swap(leaderDown)
	c.leader.Close()

	fURL := c.followerTS[0].URL
	status, body := authReq(t, "POST", fURL+"/v1/admin/promote", "")
	if status != http.StatusConflict || !strings.Contains(body, "not drained") {
		t.Fatalf("non-force promote with dead leader = %d %s, want 409 drain failure", status, body)
	}
	f := c.followers[0]
	if !f.store.IsFollower() {
		t.Fatal("aborted promotion must leave the node a follower")
	}
	if _, ok := f.ReplStatus(); !ok {
		t.Fatal("aborted promotion must restart the pull loop")
	}

	status, body = authReq(t, "POST", fURL+"/v1/admin/promote?force=1", "")
	if status != http.StatusOK {
		t.Fatalf("forced promote = %d %s", status, body)
	}
	var res promoteResult
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if !res.Forced || res.Drained || res.Epoch != 2 {
		t.Fatalf("forced promote result = %+v, want forced, undrained, epoch 2", res)
	}
	if ok, epoch := putEpoch(http.DefaultClient, fURL, "after-force", text); !ok || epoch != 2 {
		t.Fatalf("write after forced promote: acked=%v epoch=%d", ok, epoch)
	}
	// Promoting again is a typed 409 now.
	if status, body := authReq(t, "POST", fURL+"/v1/admin/promote", ""); status != http.StatusConflict || !strings.Contains(body, "not_follower") {
		t.Fatalf("re-promote = %d %s, want 409 not_follower", status, body)
	}
}

// TestFollowerEpochParamFencesStaleLeader: a leader that sees a pull
// request carrying a higher epoch fences itself on the spot — the
// replication stream doubles as the epoch gossip channel.
func TestFollowerEpochParamFencesStaleLeader(t *testing.T) {
	c := newFailoverCluster(t, 0, 0, 0)
	text := figure2Text(t)
	if resp, body := do(t, "PUT", c.frontTS.URL+"/v1/instances/bib", text, "text/plain"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT: %d %s", resp.StatusCode, body)
	}
	// A "follower from the future" polls with epoch 5.
	status, _ := authReq(t, "GET", c.frontTS.URL+repl.StreamPath+"?from=1:0&wait_ms=1&epoch=5", "")
	if status != http.StatusConflict {
		t.Fatalf("stream with higher epoch = %d, want 409 (leader fences, then refuses)", status)
	}
	if fenced, epoch, _ := c.leader.store.Fenced(); !fenced || epoch != 5 {
		t.Fatalf("leader Fenced() = (%v, %d), want fenced at 5", fenced, epoch)
	}
	if err := c.leader.store.Put("nope", nil); err == nil {
		t.Fatal("fenced leader accepted a write")
	}
	// The fence is sticky across restart.
	c.front.swap(leaderDown)
	c.leader.Close()
	c.leader = MustNew(Config{StoreDir: c.leaderCfg.StoreDir, AdminToken: clusterToken})
	c.front.swap(c.leader.Handler())
	if fenced, epoch, _ := c.leader.store.Fenced(); !fenced || epoch != 5 {
		t.Fatalf("restarted Fenced() = (%v, %d), want sticky fence at 5", fenced, epoch)
	}
}

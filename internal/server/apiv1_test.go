package server

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pxml/internal/admission"
	"pxml/internal/apiv1"
	"pxml/internal/fixtures"
)

// noRedirect returns a client that surfaces 3xx responses instead of
// following them, for asserting on the redirects themselves.
func noRedirect() *http.Client {
	return &http.Client{
		CheckRedirect: func(*http.Request, []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
}

func TestLegacyPathsRedirectToV1(t *testing.T) {
	s, ts := newTestServer(t)
	if err := s.Put("fig", fixtures.Figure2()); err != nil {
		t.Fatal(err)
	}
	c := noRedirect()
	cases := []struct {
		method, path, want string
	}{
		{"GET", "/instances", "/v1/instances"},
		{"GET", "/instances/fig", "/v1/instances/fig"},
		{"POST", "/instances/fig/query", "/v1/instances/fig/query"},
		{"GET", "/metrics", "/v1/metrics"},
		{"POST", "/admin/scrub", "/v1/admin/scrub"},
		{"POST", "/instances/fig/query?store=x", "/v1/instances/fig/query?store=x"},
	}
	for _, tc := range cases {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		resp, err := c.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusPermanentRedirect {
			t.Errorf("%s %s = %d, want 308", tc.method, tc.path, resp.StatusCode)
			continue
		}
		if loc := resp.Header.Get("Location"); loc != tc.want {
			t.Errorf("%s %s Location = %q, want %q", tc.method, tc.path, loc, tc.want)
		}
	}

	// A redirect-following client (the default) transparently completes
	// the request, body and all.
	resp, body := do(t, "POST", ts.URL+"/instances/fig/query", "PROB EXISTS R.book", "text/plain")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "prob") {
		t.Errorf("legacy query through redirect = %d: %s", resp.StatusCode, body)
	}
}

func TestV1ErrorEnvelope(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := do(t, "GET", ts.URL+"/v1/instances/none", "", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	e := apiv1.ErrorFromBody(resp.StatusCode, []byte(body))
	if e.Code != apiv1.CodeNotFound || !strings.Contains(e.Message, "none") {
		t.Errorf("envelope = %+v", e)
	}

	// Unknown routes outside the API surface also answer the envelope.
	resp, body = do(t, "GET", ts.URL+"/nonsense", "", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if e := apiv1.ErrorFromBody(resp.StatusCode, []byte(body)); e.Code != apiv1.CodeNotFound {
		t.Errorf("unknown route envelope = %+v", e)
	}

	// Statement failures carry their own code.
	s, _ := newTestServer(t)
	ts2 := httptest.NewServer(s.Handler())
	defer ts2.Close()
	if err := s.Put("fig", fixtures.Figure2()); err != nil {
		t.Fatal(err)
	}
	resp, body = do(t, "POST", ts2.URL+"/v1/instances/fig/query", "FROBNICATE", "text/plain")
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad statement status = %d: %s", resp.StatusCode, body)
	}
	if e := apiv1.ErrorFromBody(resp.StatusCode, []byte(body)); e.Code != apiv1.CodeStatementFailed {
		t.Errorf("bad statement envelope = %+v", e)
	}
}

func TestMetricsSchemaVersionAndOrdering(t *testing.T) {
	s, ts := newTestServer(t)
	if err := s.Put("fig", fixtures.Figure2()); err != nil {
		t.Fatal(err)
	}
	do(t, "POST", ts.URL+"/v1/instances/fig/query", "PROB EXISTS R.book", "text/plain")

	resp, body := do(t, "GET", ts.URL+"/v1/metrics", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	var payload struct {
		SchemaVersion int            `json:"schema_version"`
		UptimeS       float64        `json:"uptime_s"`
		Server        map[string]any `json:"server"`
		Admission     map[string]any `json:"admission"`
		Instances     map[string]any `json:"instances"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatal(err)
	}
	if payload.SchemaVersion != metricsSchemaVersion {
		t.Errorf("schema_version = %d, want %d", payload.SchemaVersion, metricsSchemaVersion)
	}
	if payload.Admission == nil {
		t.Error("admission section missing")
	}
	// Section order is part of the schema: schema_version first, then
	// uptime_s, then the sections in declaration order.
	iv := strings.Index(body, `"schema_version"`)
	iu := strings.Index(body, `"uptime_s"`)
	is := strings.Index(body, `"server"`)
	ii := strings.Index(body, `"instances"`)
	if !(iv >= 0 && iv < iu && iu < is && is < ii) {
		t.Errorf("section order wrong: schema_version@%d uptime_s@%d server@%d instances@%d", iv, iu, is, ii)
	}

	// Per-endpoint and per-shape percentile timers are observable.
	var timers struct {
		Server map[string]json.RawMessage `json:"server"`
	}
	if err := json.Unmarshal([]byte(body), &timers); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"http_latency.query", "pxql_latency.exists"} {
		raw, ok := timers.Server[name]
		if !ok {
			t.Errorf("timer %q missing from /v1/metrics server section", name)
			continue
		}
		var snap struct {
			Count int64   `json:"count"`
			P50MS float64 `json:"p50_ms"`
			P99MS float64 `json:"p99_ms"`
		}
		if err := json.Unmarshal(raw, &snap); err != nil {
			t.Fatalf("timer %q: %v", name, err)
		}
		if snap.Count < 1 {
			t.Errorf("timer %q count = %d, want >= 1", name, snap.Count)
		}
	}
}

func TestAdmissionQuota429WithRetryAfter(t *testing.T) {
	s := MustNew(Config{
		DefaultQuota: admission.Quota{Rate: 1, Burst: 2},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if err := s.Put("fig", fixtures.Figure2()); err != nil {
		t.Fatal(err)
	}

	var lastResp *http.Response
	var lastBody string
	shed := 0
	for i := 0; i < 5; i++ {
		resp, body := do(t, "POST", ts.URL+"/v1/instances/fig/query", "STATS", "text/plain")
		if resp.StatusCode == http.StatusTooManyRequests {
			shed++
			lastResp, lastBody = resp, body
		}
	}
	if shed != 3 {
		t.Fatalf("shed %d of 5 with burst 2, want 3", shed)
	}
	if ra := lastResp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	}
	e := apiv1.ErrorFromBody(lastResp.StatusCode, []byte(lastBody))
	if e.Code != apiv1.CodeQuotaExceeded {
		t.Errorf("shed envelope code = %q, want quota_exceeded", e.Code)
	}
	if e.RetryAfter <= 0 {
		t.Errorf("shed envelope retry_after_ms = %v, want > 0", e.RetryAfter)
	}
	if !e.Retryable() {
		t.Error("quota shed not marked retryable")
	}
}

// TestTwoTenantOverloadIsolation is the acceptance scenario: a hot tenant
// hammering one instance is shed while a cold tenant querying another
// instance on the same server is admitted untouched.
func TestTwoTenantOverloadIsolation(t *testing.T) {
	s := MustNew(Config{
		DefaultQuota: admission.Quota{Rate: 5, Burst: 5},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if err := s.Put("hot", fixtures.Figure2()); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("cold", fixtures.Figure2()); err != nil {
		t.Fatal(err)
	}

	// Hot tenant: 30 concurrent requests against burst 5 — most shed.
	var wg sync.WaitGroup
	var mu sync.Mutex
	hotOK, hotShed := 0, 0
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := do(t, "POST", ts.URL+"/v1/instances/hot/query", "STATS", "text/plain")
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case http.StatusOK:
				hotOK++
			case http.StatusTooManyRequests:
				hotShed++
			}
		}()
	}
	wg.Wait()
	if hotShed == 0 {
		t.Fatalf("hot tenant never shed (ok=%d)", hotOK)
	}
	if hotOK == 0 {
		t.Fatalf("hot tenant fully starved, burst should admit some")
	}

	// Cold tenant: its own bucket is untouched by the hot tenant's burn.
	for i := 0; i < 5; i++ {
		resp, body := do(t, "POST", ts.URL+"/v1/instances/cold/query", "STATS", "text/plain")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cold tenant request %d = %d: %s", i, resp.StatusCode, body)
		}
	}

	// The shed counters prove which tenant paid.
	if v := s.reg.Counter("admission_shed.hot").Value(); v == 0 {
		t.Error("admission_shed.hot = 0")
	}
	if v := s.reg.Counter("admission_shed.cold").Value(); v != 0 {
		t.Errorf("admission_shed.cold = %d, want 0", v)
	}
}

func TestQuotaRuntimeReload(t *testing.T) {
	s := MustNew(Config{
		DefaultQuota: admission.Quota{Rate: 0.001, Burst: 1},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if err := s.Put("fig", fixtures.Figure2()); err != nil {
		t.Fatal(err)
	}

	// Burn the single token; the next request sheds.
	do(t, "POST", ts.URL+"/v1/instances/fig/query", "STATS", "text/plain")
	resp, _ := do(t, "POST", ts.URL+"/v1/instances/fig/query", "STATS", "text/plain")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("pre-reload status = %d, want 429", resp.StatusCode)
	}

	// Inspect the live state.
	resp, body := do(t, "GET", ts.URL+"/v1/admin/quotas", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET quotas = %d", resp.StatusCode)
	}
	var snap admission.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Default.Rate != 0.001 {
		t.Errorf("snapshot default rate = %g", snap.Default.Rate)
	}

	// Loosen at runtime; requests flow again immediately.
	reload := `{"default_quota": {"rate": 1000, "burst": 100}}`
	resp, body = do(t, "PUT", ts.URL+"/v1/admin/quotas", reload, "application/json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT quotas = %d: %s", resp.StatusCode, body)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, _ = do(t, "POST", ts.URL+"/v1/instances/fig/query", "STATS", "text/plain")
		if resp.StatusCode == http.StatusOK || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-reload status = %d, want 200", resp.StatusCode)
	}

	// Invalid quotas are rejected with the envelope, state unchanged.
	resp, body = do(t, "PUT", ts.URL+"/v1/admin/quotas", `{"default_quota": {"rate": 5, "burst": 0.1}}`, "application/json")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid reload = %d: %s", resp.StatusCode, body)
	}
	if e := apiv1.ErrorFromBody(resp.StatusCode, []byte(body)); e.Code != apiv1.CodeInvalidRequest {
		t.Errorf("invalid reload envelope = %+v", e)
	}
}

func TestAdmissionBypassForProbes(t *testing.T) {
	// Quota of nearly nothing: API requests shed, probes never do.
	s := MustNew(Config{
		DefaultQuota: admission.Quota{Rate: 0.001, Burst: 1},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	do(t, "GET", ts.URL+"/v1/instances", "", "") // burn the token
	for i := 0; i < 3; i++ {
		resp, _ := do(t, "GET", ts.URL+"/healthz", "", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz shed by admission: %d", resp.StatusCode)
		}
	}
}

func TestConfigValidatesQuotasAndTelemetry(t *testing.T) {
	if _, err := New(Config{DefaultQuota: admission.Quota{Rate: 5, Burst: 0.1}}); err == nil {
		t.Error("New accepted unusable default quota")
	}
	if _, err := New(Config{TenantQuotas: map[string]admission.Quota{"x": {Weight: -1}}}); err == nil {
		t.Error("New accepted negative tenant weight")
	}
	if _, err := New(Config{StatsdAddr: "sink:8125", StatsdNetwork: "carrier-pigeon"}); err == nil {
		t.Error("New accepted unsupported statsd network")
	}
	if _, err := New(Config{StoreDir: "a", FilesDir: "b"}); err == nil {
		t.Error("New accepted StoreDir+FilesDir together")
	}
}

// TestPerEndpointTimersCoverRoutes spot-checks that distinct routes land
// in distinct percentile timers.
func TestPerEndpointTimersCoverRoutes(t *testing.T) {
	s, ts := newTestServer(t)
	if err := s.Put("fig", fixtures.Figure2()); err != nil {
		t.Fatal(err)
	}
	do(t, "GET", ts.URL+"/v1/instances", "", "")
	do(t, "GET", ts.URL+"/v1/instances/fig", "", "")
	do(t, "POST", ts.URL+"/v1/instances/fig/batch", "STATS\nPROB EXISTS R.book", "text/plain")
	do(t, "GET", ts.URL+"/v1/metrics", "", "")
	for _, name := range []string{"http_latency.list", "http_latency.get", "http_latency.batch", "http_latency.metrics"} {
		if s.reg.Timer(name).Count() < 1 {
			t.Errorf("timer %s not observed", name)
		}
	}
	// The batch fed the shape timers too: per-statement shapes recorded.
	if s.reg.Timer("pxql_latency.stats").Count() < 1 {
		t.Error("pxql_latency.stats not observed")
	}
	if s.reg.Timer("pxql_latency.exists").Count() < 1 {
		t.Error("pxql_latency.exists not observed")
	}
}

// TestTelemetryLifecycleThroughServer boots a server with a live UDP
// sink and checks flushes carry the server's metrics; Close stops the
// loop with a final flush.
func TestTelemetryLifecycleThroughServer(t *testing.T) {
	sink := newUDPSink(t)
	s := MustNew(Config{
		StatsdAddr:     sink.addr,
		StatsdInterval: 20 * time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if err := s.Put("fig", fixtures.Figure2()); err != nil {
		t.Fatal(err)
	}
	do(t, "POST", ts.URL+"/v1/instances/fig/query", "PROB EXISTS R.book", "text/plain")

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if text := sink.text(); strings.Contains(text, "pxmld.http_requests:") &&
			strings.Contains(text, "pxmld.pxql_latency.exists.p99_ms:") &&
			strings.Contains(text, "pxmld.os_rss_bytes:") {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	text := sink.text()
	for _, want := range []string{
		"pxmld.http_requests:",
		"pxmld.http_latency.query.p99_ms:",
		"pxmld.pxql_latency.exists.p99_ms:",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("sink missing %q in:\n%s", want, clip(text, 2000))
		}
	}
}

func clip(s string, n int) string {
	if len(s) > n {
		return s[:n] + "..."
	}
	return s
}

// udpSink is a loopback datagram collector standing in for statsd.
type udpSink struct {
	addr string
	mu   sync.Mutex
	data []byte
}

func newUDPSink(t *testing.T) *udpSink {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pc.Close() })
	sk := &udpSink{addr: pc.LocalAddr().String()}
	go func() {
		buf := make([]byte, 65536)
		for {
			n, _, err := pc.ReadFrom(buf)
			if err != nil {
				return
			}
			sk.mu.Lock()
			sk.data = append(sk.data, buf[:n]...)
			sk.data = append(sk.data, '\n')
			sk.mu.Unlock()
		}
	}()
	return sk
}

func (s *udpSink) text() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return string(s.data)
}

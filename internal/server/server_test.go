package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pxml/internal/codec"
	"pxml/internal/core"
	"pxml/internal/fixtures"
	"pxml/internal/prob"
	"pxml/internal/sets"
	"pxml/internal/store"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := MustNew(Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func figure2Text(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	if err := codec.EncodeText(&buf, fixtures.Figure2()); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func do(t *testing.T, method, url, body, contentType string) (*http.Response, string) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func TestPutGetDeleteRoundTrip(t *testing.T) {
	_, ts := newTestServer(t)
	text := figure2Text(t)

	resp, body := do(t, "PUT", ts.URL+"/instances/bib", text, "text/plain")
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"objects":11`) {
		t.Errorf("PUT response: %s", body)
	}

	// Fetch back as text and as JSON.
	resp, body = do(t, "GET", ts.URL+"/instances/bib", "", "")
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(body, "pxml/1") {
		t.Fatalf("GET text status %d: %.60s", resp.StatusCode, body)
	}
	back, err := codec.DecodeText(strings.NewReader(body))
	if err != nil {
		t.Fatalf("decoding served instance: %v", err)
	}
	if back.NumObjects() != 11 {
		t.Errorf("served instance objects = %d", back.NumObjects())
	}
	req, _ := http.NewRequest("GET", ts.URL+"/instances/bib", nil)
	req.Header.Set("Accept", "application/json")
	jr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Body.Close()
	if _, err := codec.DecodeJSON(jr.Body); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}

	// List.
	resp, body = do(t, "GET", ts.URL+"/instances", "", "")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"name":"bib"`) {
		t.Fatalf("list: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"tree":false`) {
		t.Errorf("list should mark Figure 2 as non-tree: %s", body)
	}

	// Delete.
	resp, _ = do(t, "DELETE", ts.URL+"/instances/bib", "", "")
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}
	resp, _ = do(t, "DELETE", ts.URL+"/instances/bib", "", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second DELETE status %d", resp.StatusCode)
	}
}

func TestQueryEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/instances/bib", figure2Text(t), "text/plain")

	// Probability query (DAG instance: pxql falls back to BN inference).
	resp, body := do(t, "POST", ts.URL+"/instances/bib/query", "PROB OBJECT A1", "text/plain")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}
	var qr struct {
		Text string   `json:"text"`
		Prob *float64 `json:"prob"`
	}
	if err := json.Unmarshal([]byte(body), &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Prob == nil || *qr.Prob < 0.879 || *qr.Prob > 0.881 {
		t.Errorf("P(A1) = %v", qr.Prob)
	}

	// Bad statement.
	resp, _ = do(t, "POST", ts.URL+"/instances/bib/query", "FROBNICATE", "text/plain")
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad statement status %d", resp.StatusCode)
	}

	// Unknown instance.
	resp, _ = do(t, "POST", ts.URL+"/instances/nope/query", "STATS", "text/plain")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown instance status %d", resp.StatusCode)
	}
}

func TestQueryStoreResult(t *testing.T) {
	s, ts := newTestServer(t)
	// Store a tree instance so the algebra fast paths apply.
	var buf bytes.Buffer
	if err := codec.EncodeText(&buf, smallTree()); err != nil {
		t.Fatal(err)
	}
	do(t, "PUT", ts.URL+"/instances/t", buf.String(), "text/plain")

	resp, body := do(t, "POST", ts.URL+"/instances/t/query?store=proj", "PROJECT r.a", "text/plain")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"stored":"proj"`) {
		t.Fatalf("store query: %d %s", resp.StatusCode, body)
	}
	if _, ok := s.Get("proj"); !ok {
		t.Error("stored result missing from catalog")
	}
	// Storing a scalar result fails.
	resp, _ = do(t, "POST", ts.URL+"/instances/t/query?store=x", "STATS", "text/plain")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("scalar store status %d", resp.StatusCode)
	}
}

func TestPutRejectsGarbage(t *testing.T) {
	_, ts := newTestServer(t)
	resp, _ := do(t, "PUT", ts.URL+"/instances/x", "not an instance", "text/plain")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage PUT status %d", resp.StatusCode)
	}
	// Structurally broken instance (child under two labels).
	bad := "pxml/1\nroot r\nlch r a 0 1 x\nlch r b 0 1 x\n"
	resp, _ = do(t, "PUT", ts.URL+"/instances/x", bad, "text/plain")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid PUT status %d", resp.StatusCode)
	}
}

func TestDotEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/instances/bib", figure2Text(t), "text/plain")
	resp, body := do(t, "GET", ts.URL+"/instances/bib/dot", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dot status %d", resp.StatusCode)
	}
	for _, want := range []string{"digraph pxml", `"R" -> "B1"`, "book (0.80)"} {
		if !strings.Contains(body, want) {
			t.Errorf("dot output missing %q:\n%s", want, body)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, ts := newTestServer(t)
	_ = s
	text := figure2Text(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := string(rune('a' + i))
			resp, _ := do(t, "PUT", ts.URL+"/instances/"+name, text, "text/plain")
			if resp.StatusCode != http.StatusCreated {
				t.Errorf("concurrent PUT status %d", resp.StatusCode)
			}
			resp, _ = do(t, "POST", ts.URL+"/instances/"+name+"/query", "STATS", "text/plain")
			if resp.StatusCode != http.StatusOK {
				t.Errorf("concurrent query status %d", resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	if got := len(s.Names()); got != 8 {
		t.Errorf("stored instances = %d", got)
	}
}

// smallTree builds a tiny tree instance (so the algebra fast paths apply).
func smallTree() *core.ProbInstance {
	pi := core.NewProbInstance("r")
	pi.SetLCh("r", "a", "x")
	w := prob.NewOPF()
	w.Put(sets.NewSet(), 0.3)
	w.Put(sets.NewSet("x"), 0.7)
	pi.SetOPF("r", w)
	pi.SetLCh("x", "b", "y")
	wx := prob.NewOPF()
	wx.Put(sets.NewSet(), 0.5)
	wx.Put(sets.NewSet("y"), 0.5)
	pi.SetOPF("x", wx)
	return pi
}

func TestPersistentCatalog(t *testing.T) {
	dir := t.TempDir()
	s, err := NewPersistent(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("tree", smallTree()); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("bib", fixtures.Figure2()); err != nil {
		t.Fatal(err)
	}
	// Invalid name for disk storage.
	if err := s.Put("../evil", smallTree()); err == nil {
		t.Error("path-escaping name accepted")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh catalog over the same directory sees both instances.
	s2, err := NewPersistent(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := s2.Names()
	if len(names) != 2 || names[0] != "bib" || names[1] != "tree" {
		t.Fatalf("restored names = %v", names)
	}
	pi, ok := s2.Get("bib")
	if !ok || pi.NumObjects() != 11 {
		t.Fatalf("restored bib = %v", pi)
	}

	// Delete is durable too.
	s2.Delete("tree")
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := NewPersistent(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if len(s3.Names()) != 1 {
		t.Errorf("names after delete = %v", s3.Names())
	}
}

func TestPersistentHTTPRejectsBadNames(t *testing.T) {
	dir := t.TempDir()
	s, err := NewPersistent(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := do(t, "PUT", ts.URL+"/instances/has%2Fslash", figure2Text(t), "text/plain")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad name status %d: %s", resp.StatusCode, body)
	}
}

func TestPutOversizedBodyGets413(t *testing.T) {
	s := MustNew(Config{})
	s.SetMaxBody(512)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A syntactically valid prefix padded past the limit, so the only
	// possible failure is the size cap.
	var b strings.Builder
	b.WriteString("pxml/1\nroot r\n")
	for b.Len() < 2048 {
		b.WriteString("obj filler\n")
	}
	resp, body := do(t, "PUT", ts.URL+"/instances/big", b.String(), "text/plain")
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized PUT status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"error"`) {
		t.Errorf("413 body not structured JSON: %s", body)
	}
	// Within the limit the same shape is accepted.
	resp, body = do(t, "PUT", ts.URL+"/instances/ok", "pxml/1\nroot r\n", "text/plain")
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("small PUT status %d: %s", resp.StatusCode, body)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/instances/bib", figure2Text(t), "text/plain")
	for i := 0; i < 5; i++ {
		resp, body := do(t, "POST", ts.URL+"/instances/bib/query", "PROB OBJECT A1", "text/plain")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: %d %s", i, resp.StatusCode, body)
		}
	}

	resp, body := do(t, "GET", ts.URL+"/metrics", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	var m struct {
		Server struct {
			Requests int64 `json:"http_requests"`
			Errors   int64 `json:"http_errors"`
			Latency  struct {
				Count int64 `json:"count"`
			} `json:"http_latency"`
		} `json:"server"`
		Instances map[string]struct {
			Queries         int64 `json:"queries"`
			CacheHits       int64 `json:"cache_hits"`
			ResultCacheHits int64 `json:"result_cache_hits"`
		} `json:"instances"`
		ResultCache struct {
			Hits    int64 `json:"hits"`
			Entries int   `json:"entries"`
		} `json:"result_cache"`
	}
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, body)
	}
	// The runtime gauges land inside the server registry snapshot.
	var raw struct {
		Server map[string]json.RawMessage `json:"server"`
	}
	if err := json.Unmarshal([]byte(body), &raw); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	if m.Server.Requests < 6 || m.Server.Latency.Count < 6 {
		t.Errorf("server counters too low: %+v", m.Server)
	}
	bib := m.Instances["bib"]
	if bib.Queries != 5 {
		t.Errorf("bib queries = %d, want 5", bib.Queries)
	}
	// Repeated identical statements are answered from some cache layer:
	// the result cache short-circuits all but the first evaluation.
	if bib.CacheHits+bib.ResultCacheHits == 0 {
		t.Errorf("no cache hits after repeated queries\n%s", body)
	}
	if bib.ResultCacheHits != 4 {
		t.Errorf("bib result cache hits = %d, want 4", bib.ResultCacheHits)
	}
	if m.ResultCache.Hits != 4 || m.ResultCache.Entries != 1 {
		t.Errorf("result_cache = %+v, want 4 hits / 1 entry", m.ResultCache)
	}
	for _, gauge := range []string{"runtime_heap_alloc_bytes", "runtime_goroutines"} {
		if _, ok := raw.Server[gauge]; !ok {
			t.Errorf("metrics missing runtime gauge %s", gauge)
		}
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	do(t, "PUT", ts.URL+"/instances/bib", figure2Text(t), "text/plain")

	batch := "PROB OBJECT A1\n\nSTATS\nFROBNICATE\n"
	resp, body := do(t, "POST", ts.URL+"/instances/bib/batch", batch, "text/plain")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var out []struct {
		Statement string   `json:"statement"`
		Text      string   `json:"text"`
		Prob      *float64 `json:"prob"`
		Error     string   `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("batch results = %d, want 3 (blank line skipped)", len(out))
	}
	if out[0].Prob == nil || *out[0].Prob < 0.879 || *out[0].Prob > 0.881 {
		t.Errorf("batch P(A1) = %v", out[0].Prob)
	}
	if !strings.Contains(out[1].Text, "objects=11") {
		t.Errorf("batch STATS = %q", out[1].Text)
	}
	if out[2].Error == "" {
		t.Error("bad statement in batch should carry an error")
	}

	// Empty batch is a 400.
	resp, _ = do(t, "POST", ts.URL+"/instances/bib/batch", "\n\n", "text/plain")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch status %d", resp.StatusCode)
	}
	// Unknown instance is a 404.
	resp, _ = do(t, "POST", ts.URL+"/instances/nope/batch", "STATS", "text/plain")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown instance batch status %d", resp.StatusCode)
	}
}

func TestRequestLogging(t *testing.T) {
	s := MustNew(Config{})
	var buf bytes.Buffer
	var mu sync.Mutex
	s.SetLogger(slog.New(slog.NewJSONHandler(syncWriter{&mu, &buf}, nil)))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	do(t, "GET", ts.URL+"/v1/instances", "", "")
	do(t, "GET", ts.URL+"/v1/instances/none", "", "")

	mu.Lock()
	logged := buf.String()
	mu.Unlock()
	lines := strings.Split(strings.TrimSpace(logged), "\n")
	if len(lines) != 2 {
		t.Fatalf("log lines = %d:\n%s", len(lines), logged)
	}
	var entry struct {
		Msg    string `json:"msg"`
		Method string `json:"method"`
		Path   string `json:"path"`
		Status int    `json:"status"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &entry); err != nil {
		t.Fatal(err)
	}
	if entry.Msg != "request" || entry.Method != "GET" || entry.Path != "/v1/instances/none" || entry.Status != 404 {
		t.Errorf("logged entry = %+v", entry)
	}
}

// syncWriter serializes writes from concurrent request goroutines.
type syncWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (s syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// TestPersistentFilesCatalog exercises the legacy flat-file backend:
// stores and deletes survive a reopen, and a corrupt file is quarantined
// to <name>.pxml.corrupt instead of failing startup.
func TestPersistentFilesCatalog(t *testing.T) {
	dir := t.TempDir()
	s, err := NewPersistentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("tree", smallTree()); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("bib", fixtures.Figure2()); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("../evil", smallTree()); err == nil {
		t.Error("path-escaping name accepted")
	}
	if err := os.WriteFile(filepath.Join(dir, "mangled.pxml"), []byte("pxml/1\nnot an instance\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := NewPersistentFiles(dir)
	if err != nil {
		t.Fatalf("corrupt file aborted startup: %v", err)
	}
	names := s2.Names()
	if len(names) != 2 || names[0] != "bib" || names[1] != "tree" {
		t.Fatalf("restored names = %v", names)
	}
	if _, err := os.Stat(filepath.Join(dir, "mangled.pxml.corrupt")); err != nil {
		t.Fatalf("corrupt file not quarantined: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "mangled.pxml")); !os.IsNotExist(err) {
		t.Fatal("corrupt file still in place")
	}

	s2.Delete("tree")
	s3, err := NewPersistentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(s3.Names()) != 1 {
		t.Errorf("names after delete = %v", s3.Names())
	}
}

// TestNewWithStoreReportAndMetrics checks that the store-backed catalog
// surfaces the recovery report and a "store" section under /metrics.
func TestNewWithStoreReportAndMetrics(t *testing.T) {
	dir := t.TempDir()
	s, rep, err := NewWithStore(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Recovered != 0 {
		t.Fatalf("fresh dir recovery report = %+v", rep)
	}
	if err := s.Put("tree", smallTree()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rep2, err := NewWithStore(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rep2.Recovered != 1 {
		t.Fatalf("reopen recovered %d, want 1 (%s)", rep2.Recovered, rep2)
	}
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()
	resp, body := do(t, "GET", ts.URL+"/metrics", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	var payload map[string]any
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatal(err)
	}
	st, ok := payload["store"].(map[string]any)
	if !ok {
		t.Fatalf("metrics payload missing store section: %s", body)
	}
	if st["instances"].(float64) != 1 {
		t.Fatalf("store section = %v", st)
	}
	srvMetrics, ok := payload["server"].(map[string]any)
	if !ok {
		t.Fatalf("metrics payload missing server section: %s", body)
	}
	if _, ok := srvMetrics["store_wal_appends"]; !ok {
		t.Fatalf("server metrics missing store counters: %v", srvMetrics)
	}
}

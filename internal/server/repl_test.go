package server

// End-to-end replication tests: a leader and followers wired through
// in-process HTTP servers, with a swappable leader handler (so the
// leader can be killed and restarted without changing its URL) and
// per-follower partition proxies for chaos scenarios.

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pxml/internal/codec"
	"pxml/internal/fixtures"
	"pxml/internal/repl"
	"pxml/internal/store"
)

// benchFigure2 is figure2Text for any testing.TB (benchmarks included).
func benchFigure2(tb testing.TB) string {
	tb.Helper()
	var buf bytes.Buffer
	if err := codec.EncodeText(&buf, fixtures.Figure2()); err != nil {
		tb.Fatal(err)
	}
	return buf.String()
}

// leaderFront is a stable URL in front of a swappable handler: swapping
// in a freshly restarted leader's Handler keeps the followers' configured
// leader URL valid across the restart.
type leaderFront struct{ h atomic.Value }

func newLeaderFront(h http.Handler) *leaderFront {
	f := &leaderFront{}
	f.h.Store(h)
	return f
}

func (f *leaderFront) swap(h http.Handler) { f.h.Store(h) }

func (f *leaderFront) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.h.Load().(http.Handler).ServeHTTP(w, r)
}

var leaderDown = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "leader down", http.StatusServiceUnavailable)
})

// partitionProxy stands between one follower and the shared leader
// front; flipping down simulates a network partition for that follower
// only.
type partitionProxy struct {
	front *leaderFront
	down  atomic.Bool
}

func (p *partitionProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if p.down.Load() {
		http.Error(w, "partitioned", http.StatusServiceUnavailable)
		return
	}
	p.front.ServeHTTP(w, r)
}

const clusterToken = "cluster-secret"

type replCluster struct {
	t         *testing.T
	leaderCfg Config
	leader    *Server
	front     *leaderFront
	frontTS   *httptest.Server

	followers   []*Server
	followerTS  []*httptest.Server
	proxies     []*partitionProxy
	proxyURL    []string
	followerDir []string
}

// newReplCluster starts a leader and n followers replicating through
// per-follower partition proxies. Poll and staleness windows are tuned
// short so tests converge and detect staleness quickly.
func newReplCluster(t *testing.T, n int, leaderOpts store.Options) *replCluster {
	t.Helper()
	c := &replCluster{t: t}
	c.leaderCfg = Config{
		StoreDir:     t.TempDir(),
		StoreOptions: leaderOpts,
		AdminToken:   clusterToken,
	}
	c.leader = MustNew(c.leaderCfg)
	c.front = newLeaderFront(c.leader.Handler())
	c.frontTS = httptest.NewServer(c.front)
	t.Cleanup(c.frontTS.Close)
	t.Cleanup(func() { c.leader.Close() })

	for i := 0; i < n; i++ {
		proxy := &partitionProxy{front: c.front}
		proxyTS := httptest.NewServer(proxy)
		t.Cleanup(proxyTS.Close)
		dir := t.TempDir()
		f := MustNew(Config{
			StoreDir:         dir,
			FollowLeader:     proxyTS.URL,
			FollowToken:      clusterToken,
			ReplMaxStaleness: 2 * time.Second,
			ReplPollWait:     100 * time.Millisecond,
		})
		fts := httptest.NewServer(f.Handler())
		t.Cleanup(fts.Close)
		t.Cleanup(func() { f.Close() })
		c.followers = append(c.followers, f)
		c.followerTS = append(c.followerTS, fts)
		c.proxies = append(c.proxies, proxy)
		c.proxyURL = append(c.proxyURL, proxyTS.URL)
		c.followerDir = append(c.followerDir, dir)
	}
	return c
}

// killLeader stops the leader process; its URL keeps answering 503.
func (c *replCluster) killLeader() {
	c.front.swap(leaderDown)
	c.leader.Close()
}

// restartLeader reopens the leader from its surviving store directory
// and swaps it back in at the same URL.
func (c *replCluster) restartLeader() {
	c.leader = MustNew(c.leaderCfg)
	c.front.swap(c.leader.Handler())
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(15 * time.Millisecond)
	}
}

// waitConverged blocks until every follower's position equals the
// leader's committed position.
func (c *replCluster) waitConverged() {
	c.t.Helper()
	lp := c.leader.store.Pos()
	waitFor(c.t, 15*time.Second, fmt.Sprintf("followers to reach %s", lp), func() bool {
		for _, f := range c.followers {
			st, ok := f.ReplStatus()
			if !ok || st.Diverged || st.Pos != lp {
				return false
			}
		}
		return true
	})
}

func TestReplSmoke(t *testing.T) {
	c := newReplCluster(t, 2, store.Options{})
	text := figure2Text(t)

	for _, name := range []string{"bib", "mirror", "third"} {
		resp, body := do(t, "PUT", c.frontTS.URL+"/v1/instances/"+name, text, "text/plain")
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("PUT %s: %d %s", name, resp.StatusCode, body)
		}
	}
	c.waitConverged()

	for i, fts := range c.followerTS {
		// Reads are served locally by the replica.
		resp, body := do(t, "GET", fts.URL+"/v1/instances/bib", "", "")
		if resp.StatusCode != http.StatusOK || !strings.HasPrefix(body, "pxml/1") {
			t.Fatalf("follower %d GET: %d %.60s", i, resp.StatusCode, body)
		}
		resp, body = do(t, "POST", fts.URL+"/v1/instances/bib/query", "PROB OBJECT A1", "text/plain")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("follower %d query: %d %s", i, resp.StatusCode, body)
		}
		resp, body = do(t, "GET", fts.URL+"/readyz", "", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("follower %d readyz: %d %s", i, resp.StatusCode, body)
		}
		resp, body = do(t, "GET", fts.URL+"/v1/metrics", "", "")
		if !strings.Contains(body, `"role":"follower"`) || !strings.Contains(body, `"caught_up":true`) {
			t.Fatalf("follower %d metrics replication section: %d %s", i, resp.StatusCode, body)
		}
	}
	if _, body := do(t, "GET", c.frontTS.URL+"/v1/metrics", "", ""); !strings.Contains(body, `"role":"leader"`) {
		t.Errorf("leader metrics missing replication role: %s", body)
	}

	// Writes against a follower 307-route to the leader's equivalent URL.
	req, _ := http.NewRequest("PUT", c.followerTS[0].URL+"/v1/instances/routed", strings.NewReader(text))
	resp, err := noRedirect().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("follower PUT status = %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != c.proxyURL[0]+"/v1/instances/routed" {
		t.Fatalf("follower PUT Location = %q, want %q", loc, c.proxyURL[0]+"/v1/instances/routed")
	}
	// A redirect-following client writes through the follower end to end.
	resp2, body := do(t, "PUT", c.followerTS[0].URL+"/v1/instances/routed", text, "text/plain")
	if resp2.StatusCode != http.StatusCreated {
		t.Fatalf("redirected PUT: %d %s", resp2.StatusCode, body)
	}
	c.waitConverged()
	if _, ok := c.followers[1].store.Get("routed"); !ok {
		t.Fatal("write routed via follower 0 did not reach follower 1")
	}

	// Kill the leader, restart it from its directory, and keep going.
	c.killLeader()
	if resp, _ := do(t, "PUT", c.frontTS.URL+"/v1/instances/while-down", text, "text/plain"); resp.StatusCode == http.StatusCreated {
		t.Fatal("write acknowledged while leader was down")
	}
	c.restartLeader()
	if resp, body := do(t, "PUT", c.frontTS.URL+"/v1/instances/after-restart", text, "text/plain"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT after restart: %d %s", resp.StatusCode, body)
	}
	c.waitConverged()
	for i, f := range c.followers {
		if _, ok := f.store.Get("after-restart"); !ok {
			t.Errorf("follower %d missing post-restart write", i)
		}
	}
}

func TestReplStaleFollowerNotReady(t *testing.T) {
	c := newReplCluster(t, 1, store.Options{})
	text := figure2Text(t)
	if resp, body := do(t, "PUT", c.frontTS.URL+"/v1/instances/bib", text, "text/plain"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT: %d %s", resp.StatusCode, body)
	}
	c.waitConverged()
	waitFor(t, 5*time.Second, "follower ready", func() bool {
		resp, _ := do(t, "GET", c.followerTS[0].URL+"/readyz", "", "")
		return resp.StatusCode == http.StatusOK
	})

	// Partition the follower: staleness accrues past the 2s threshold
	// and readyz flips to replica_stale, while reads keep working for
	// clients that explicitly accept them.
	c.proxies[0].down.Store(true)
	waitFor(t, 10*time.Second, "follower to report stale", func() bool {
		resp, body := do(t, "GET", c.followerTS[0].URL+"/readyz", "", "")
		return resp.StatusCode == http.StatusServiceUnavailable && strings.Contains(body, "replica_stale")
	})
	if resp, _ := do(t, "GET", c.followerTS[0].URL+"/v1/instances/bib", "", ""); resp.StatusCode != http.StatusOK {
		t.Errorf("stale follower refused a read: %d", resp.StatusCode)
	}

	// Heal: the puller reconnects and readiness returns.
	c.proxies[0].down.Store(false)
	waitFor(t, 10*time.Second, "follower to recover", func() bool {
		resp, _ := do(t, "GET", c.followerTS[0].URL+"/readyz", "", "")
		return resp.StatusCode == http.StatusOK
	})
	st, _ := c.followers[0].ReplStatus()
	if st.Reconnects == 0 {
		t.Error("expected at least one recorded reconnect after the partition healed")
	}
}

func TestReplAuth(t *testing.T) {
	c := newReplCluster(t, 0, store.Options{})
	text := figure2Text(t)
	if resp, body := do(t, "PUT", c.frontTS.URL+"/v1/instances/bib", text, "text/plain"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT: %d %s", resp.StatusCode, body)
	}

	authed := func(method, url string) (*http.Response, string) {
		t.Helper()
		req, _ := http.NewRequest(method, url, nil)
		req.Header.Set("Authorization", "Bearer "+clusterToken)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		resp.Body.Close()
		return resp, sb.String()
	}

	for _, url := range []string{
		c.frontTS.URL + repl.StreamPath + "?from=1:0&wait_ms=1",
		c.frontTS.URL + repl.BootstrapPath,
		c.frontTS.URL + "/v1/admin/quotas",
	} {
		resp, body := do(t, "GET", url, "", "")
		if resp.StatusCode != http.StatusUnauthorized || !strings.Contains(body, "unauthorized") {
			t.Errorf("GET %s without token: %d %s", url, resp.StatusCode, body)
		}
		if resp.Header.Get("WWW-Authenticate") == "" {
			t.Errorf("GET %s: missing WWW-Authenticate challenge", url)
		}
		if resp, _ := authed("GET", url); resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s with token: %d", url, resp.StatusCode)
		}
	}
	// Wrong token is rejected, and the data-plane surface stays open.
	req, _ := http.NewRequest("GET", c.frontTS.URL+"/v1/admin/quotas", nil)
	req.Header.Set("Authorization", "Bearer wrong")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("wrong token: %d, want 401", resp.StatusCode)
	}
	if resp, _ := do(t, "GET", c.frontTS.URL+"/v1/instances", "", ""); resp.StatusCode != http.StatusOK {
		t.Errorf("unauthenticated read blocked: %d", resp.StatusCode)
	}
}

func TestReplBootstrapAndDivergence(t *testing.T) {
	// A leader whose early history has been compacted away: followers
	// cannot replay from the beginning of time and must bootstrap.
	c := newReplCluster(t, 0, store.Options{SegmentSize: 512, CompactThreshold: -1})
	text := figure2Text(t)
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("inst-%d", i)
		if resp, body := do(t, "PUT", c.frontTS.URL+"/v1/instances/"+name, text, "text/plain"); resp.StatusCode != http.StatusCreated {
			t.Fatalf("PUT %s: %d %s", name, resp.StatusCode, body)
		}
	}
	if err := c.leader.store.Compact(); err != nil {
		t.Fatal(err)
	}

	// An empty follower replaying from 1:0 is off the leader's remaining
	// timeline: it must park sticky-diverged, never serve spliced history.
	blind := MustNew(Config{
		StoreDir:     t.TempDir(),
		FollowLeader: c.frontTS.URL,
		FollowToken:  clusterToken,
		ReplPollWait: 100 * time.Millisecond,
	})
	defer blind.Close()
	blindTS := httptest.NewServer(blind.Handler())
	defer blindTS.Close()
	waitFor(t, 10*time.Second, "blind follower to diverge", func() bool {
		st, _ := blind.ReplStatus()
		return st.Diverged
	})
	resp, body := do(t, "GET", blindTS.URL+"/readyz", "", "")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "diverged") {
		t.Fatalf("diverged follower readyz: %d %s", resp.StatusCode, body)
	}

	// Bootstrapping from the leader's backup lands the follower on the
	// live timeline; streaming then converges it.
	dir := t.TempDir()
	client := &repl.Client{BaseURL: c.frontTS.URL, Token: clusterToken}
	res, err := client.Bootstrap(context.Background(), dir)
	if err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	if res.Pos.IsZero() {
		t.Fatal("bootstrap restored a zero position")
	}
	f := MustNew(Config{
		StoreDir:         dir,
		FollowLeader:     c.frontTS.URL,
		FollowToken:      clusterToken,
		ReplMaxStaleness: 2 * time.Second,
		ReplPollWait:     100 * time.Millisecond,
	})
	defer f.Close()
	c.followers = append(c.followers, f)
	if resp, body := do(t, "PUT", c.frontTS.URL+"/v1/instances/post-bootstrap", text, "text/plain"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT post-bootstrap: %d %s", resp.StatusCode, body)
	}
	c.waitConverged()
	for _, name := range []string{"inst-0", "inst-5", "post-bootstrap"} {
		if _, ok := f.store.Get(name); !ok {
			t.Errorf("bootstrapped follower missing %q", name)
		}
	}
}

// TestReplChaosSoak drives writes through leader kills and follower
// partitions and asserts the acceptance property: zero acknowledged
// writes lost, both followers converged to the leader's position.
func TestReplChaosSoak(t *testing.T) {
	c := newReplCluster(t, 2, store.Options{SegmentSize: 4096})
	text := figure2Text(t)
	writer := &http.Client{Timeout: 5 * time.Second}

	var acked []string
	put := func(name string) {
		req, _ := http.NewRequest("PUT", c.frontTS.URL+"/v1/instances/"+name, strings.NewReader(text))
		req.Header.Set("Content-Type", "text/plain")
		resp, err := writer.Do(req)
		if err != nil {
			return // not acknowledged
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusCreated {
			acked = append(acked, name)
		}
	}

	for i := 0; i < 40; i++ {
		switch i {
		case 8:
			c.proxies[0].down.Store(true)
		case 15:
			c.killLeader()
		case 18:
			c.restartLeader()
		case 24:
			c.proxies[0].down.Store(false)
			c.proxies[1].down.Store(true)
		case 30:
			c.proxies[1].down.Store(false)
		}
		put(fmt.Sprintf("chaos-%02d", i))
		time.Sleep(10 * time.Millisecond)
	}
	if len(acked) == 0 {
		t.Fatal("chaos run acknowledged no writes at all")
	}
	if len(acked) == 40 {
		t.Log("note: no writes failed during the leader outage window")
	}

	c.waitConverged()
	lp := c.leader.store.Pos()
	for i, f := range c.followers {
		st, _ := f.ReplStatus()
		if st.Pos != lp {
			t.Errorf("follower %d at %s, leader at %s", i, st.Pos, lp)
		}
		for _, name := range acked {
			if _, ok := f.store.Get(name); !ok {
				t.Errorf("follower %d lost acknowledged write %q", i, name)
			}
		}
		resp, body := do(t, "GET", c.followerTS[i].URL+"/readyz", "", "")
		if resp.StatusCode != http.StatusOK {
			t.Errorf("follower %d not ready after chaos: %d %s", i, resp.StatusCode, body)
		}
	}
	// The leader itself lost nothing across its restart.
	for _, name := range acked {
		if _, ok := c.leader.store.Get(name); !ok {
			t.Errorf("leader lost acknowledged write %q across restart", name)
		}
	}
}

// BenchmarkFollowerFanout measures read throughput fanned out across a
// leader's replicas: point queries served entirely from follower-local
// engines.
func BenchmarkFollowerFanout(b *testing.B) {
	c := newReplClusterB(b, 2)
	var rr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			url := c.followerTS[int(rr.Add(1))%len(c.followerTS)].URL
			resp, err := http.Post(url+"/v1/instances/bib/query", "text/plain", strings.NewReader("PROB OBJECT A1"))
			if err != nil {
				b.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("query status %d", resp.StatusCode)
			}
			resp.Body.Close()
		}
	})
}

// newReplClusterB is the benchmark-flavoured cluster constructor: one
// leader, n converged followers, one "bib" instance loaded.
func newReplClusterB(b *testing.B, n int) *replCluster {
	b.Helper()
	c := &replCluster{}
	c.leaderCfg = Config{StoreDir: b.TempDir(), AdminToken: clusterToken}
	c.leader = MustNew(c.leaderCfg)
	c.front = newLeaderFront(c.leader.Handler())
	c.frontTS = httptest.NewServer(c.front)
	b.Cleanup(c.frontTS.Close)
	b.Cleanup(func() { c.leader.Close() })
	for i := 0; i < n; i++ {
		f := MustNew(Config{
			StoreDir:     b.TempDir(),
			FollowLeader: c.frontTS.URL,
			FollowToken:  clusterToken,
			ReplPollWait: 100 * time.Millisecond,
		})
		fts := httptest.NewServer(f.Handler())
		b.Cleanup(fts.Close)
		b.Cleanup(func() { f.Close() })
		c.followers = append(c.followers, f)
		c.followerTS = append(c.followerTS, fts)
	}
	// Load one instance and wait for both followers to catch up.
	reqBody := benchFigure2(b)
	req, _ := http.NewRequest("PUT", c.frontTS.URL+"/v1/instances/bib", strings.NewReader(reqBody))
	req.Header.Set("Content-Type", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b.Fatalf("PUT: %d", resp.StatusCode)
	}
	lp := c.leader.store.Pos()
	deadline := time.Now().Add(15 * time.Second)
	for {
		all := true
		for _, f := range c.followers {
			if st, ok := f.ReplStatus(); !ok || st.Pos != lp {
				all = false
			}
		}
		if all {
			return c
		}
		if time.Now().After(deadline) {
			b.Fatal("followers did not converge")
		}
		time.Sleep(15 * time.Millisecond)
	}
}

package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pxml/internal/apiv1"
	"pxml/internal/codec"
	"pxml/internal/gen"
	"pxml/internal/govern"
)

// newGovServer starts a test server with an explicit Config, for
// exercising the query-budget and circuit-breaker knobs.
func newGovServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// widthBombText encodes the adversarial diamond DAG of gen.WidthBomb: a
// few-KB upload whose compiled BN would need ~10^22 CPT cells.
func widthBombText(t *testing.T) string {
	t.Helper()
	pi, err := gen.WidthBomb(gen.BombConfig{Width: 12, Parents: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := codec.EncodeText(&buf, pi); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// envCode decodes the v1 error envelope of a failed response.
func envCode(t *testing.T, resp *http.Response, body string) *apiv1.Error {
	t.Helper()
	return apiv1.ErrorFromBody(resp.StatusCode, []byte(body))
}

func TestGovernorConfigValidation(t *testing.T) {
	bad := []Config{
		{QueryDeadline: -time.Second},
		{QueryMaxNodes: -1},
		{QueryMaxBytes: -1},
		{BreakerThreshold: -1},
		{BreakerCooldown: -time.Second},
		{BreakerProbes: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d: negative governor knob accepted", i)
		}
	}
	// All-zero is valid (governor fully off).
	if _, err := New(Config{}); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
}

// TestQueryIntractableHTTP: a width-bomb inference is refused upfront
// with 422 intractable — a structural verdict, not a retryable one.
func TestQueryIntractableHTTP(t *testing.T) {
	_, ts := newGovServer(t, Config{QueryMaxNodes: 1 << 20, QueryMaxBytes: 64 << 20})
	if resp, body := do(t, "PUT", ts.URL+"/instances/bomb", widthBombText(t), "text/plain"); resp.StatusCode/100 != 2 {
		t.Fatalf("upload: %d %s", resp.StatusCode, body)
	}
	start := time.Now()
	resp, body := do(t, "POST", ts.URL+"/instances/bomb/query", "PROB OBJECT leaf0", "text/plain")
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422: %s", resp.StatusCode, body)
	}
	if e := envCode(t, resp, body); e.Code != apiv1.CodeIntractable {
		t.Fatalf("code = %q, want %q", e.Code, apiv1.CodeIntractable)
	} else if e.Retryable() {
		t.Fatal("intractable must not be marked retryable")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("refusal took %v; admission must not build the network", d)
	}
}

// TestQueryBudgetExceededHTTP: a statement whose predicted cost overruns
// the step budget gets 503 budget_exceeded with a Retry-After hint.
func TestQueryBudgetExceededHTTP(t *testing.T) {
	_, ts := newGovServer(t, Config{QueryMaxNodes: 1000})
	do(t, "PUT", ts.URL+"/instances/bib", figure2Text(t), "text/plain")
	resp, body := do(t, "POST", ts.URL+"/instances/bib/query", "ESTIMATE 1000000 EXISTS R.book", "text/plain")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503: %s", resp.StatusCode, body)
	}
	e := envCode(t, resp, body)
	if e.Code != apiv1.CodeBudgetExceeded {
		t.Fatalf("code = %q, want %q", e.Code, apiv1.CodeBudgetExceeded)
	}
	if !e.Retryable() || e.RetryAfter <= 0 {
		t.Fatalf("budget_exceeded must carry a retry hint, got %+v", e)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("missing Retry-After header")
	}
	// A statement under budget on the same server still succeeds.
	resp, body = do(t, "POST", ts.URL+"/instances/bib/query", "ESTIMATE 20 EXISTS R.book", "text/plain")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small estimate: %d %s", resp.StatusCode, body)
	}
}

// TestBreakerLifecycleHTTP drives the per-shape circuit breaker through
// closed → open → half-open → closed over the wire.
func TestBreakerLifecycleHTTP(t *testing.T) {
	cooldown := 300 * time.Millisecond
	_, ts := newGovServer(t, Config{
		QueryMaxNodes:    1000,
		BreakerThreshold: 2,
		BreakerCooldown:  cooldown,
		BreakerProbes:    1,
	})
	do(t, "PUT", ts.URL+"/instances/bib", figure2Text(t), "text/plain")
	big := "ESTIMATE 1000000 EXISTS R.book"

	// Two budget trips open the estimate breaker.
	for i := 0; i < 2; i++ {
		resp, body := do(t, "POST", ts.URL+"/instances/bib/query", big, "text/plain")
		if e := envCode(t, resp, body); e.Code != apiv1.CodeBudgetExceeded {
			t.Fatalf("trip %d: code = %q, want budget_exceeded", i, e.Code)
		}
	}
	// Now even a cheap estimate is shed without reaching the engine.
	resp, body := do(t, "POST", ts.URL+"/instances/bib/query", "ESTIMATE 20 EXISTS R.book", "text/plain")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed status = %d: %s", resp.StatusCode, body)
	}
	if e := envCode(t, resp, body); e.Code != apiv1.CodeBreakerOpen {
		t.Fatalf("shed code = %q, want %q", e.Code, apiv1.CodeBreakerOpen)
	} else if e.RetryAfter <= 0 {
		t.Fatal("breaker_open must carry a retry hint")
	}
	// Other statement shapes are unaffected by the estimate breaker.
	if resp, body := do(t, "POST", ts.URL+"/instances/bib/query", "STATS", "text/plain"); resp.StatusCode != http.StatusOK {
		t.Fatalf("unrelated shape shed too: %d %s", resp.StatusCode, body)
	}

	// After the cooldown a half-open probe that succeeds recloses it.
	time.Sleep(cooldown + 50*time.Millisecond)
	if resp, body := do(t, "POST", ts.URL+"/instances/bib/query", "ESTIMATE 20 EXISTS R.book", "text/plain"); resp.StatusCode != http.StatusOK {
		t.Fatalf("half-open probe: %d %s", resp.StatusCode, body)
	}
	// Closed again: the next cheap estimate is admitted (not shed), and a
	// single new failure does not reopen (threshold is 2).
	if resp, body := do(t, "POST", ts.URL+"/instances/bib/query", "ESTIMATE 20 EXISTS R.book", "text/plain"); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-reclose estimate: %d %s", resp.StatusCode, body)
	}
	resp, body = do(t, "POST", ts.URL+"/instances/bib/query", big, "text/plain")
	if e := envCode(t, resp, body); e.Code != apiv1.CodeBudgetExceeded {
		t.Fatalf("post-reclose failure code = %q, want budget_exceeded (breaker closed)", e.Code)
	}
}

// TestBatchBreakerShedsInline: statements of an open shape inside a batch
// are answered breaker_open per line without reaching the engine, while
// the rest of the batch still runs.
func TestBatchBreakerShedsInline(t *testing.T) {
	_, ts := newGovServer(t, Config{
		QueryMaxNodes:    1000,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
	})
	do(t, "PUT", ts.URL+"/instances/bib", figure2Text(t), "text/plain")
	// One trip opens the estimate breaker (threshold 1).
	do(t, "POST", ts.URL+"/instances/bib/query", "ESTIMATE 1000000 EXISTS R.book", "text/plain")

	resp, body := do(t, "POST", ts.URL+"/instances/bib/batch", "ESTIMATE 20 EXISTS R.book\nSTATS", "text/plain")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d: %s", resp.StatusCode, body)
	}
	var out []struct {
		Statement string `json:"statement"`
		Error     string `json:"error,omitempty"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("batch body: %v (%s)", err, body)
	}
	if len(out) != 2 {
		t.Fatalf("results = %d, want 2", len(out))
	}
	if e := out[0].Error; !strings.Contains(e, apiv1.CodeBreakerOpen) {
		t.Fatalf("estimate line error = %q, want breaker_open", e)
	}
	if out[1].Error != "" {
		t.Fatalf("STATS line failed: %q", out[1].Error)
	}
}

// TestMetricsGovernorSection: /v1/metrics reports the configured budget,
// live breaker states, and the query outcome counters.
func TestMetricsGovernorSection(t *testing.T) {
	_, ts := newGovServer(t, Config{
		QueryMaxNodes:    1 << 20,
		QueryMaxBytes:    64 << 20,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
	})
	do(t, "PUT", ts.URL+"/instances/bomb", widthBombText(t), "text/plain")
	// One intractable refusal: counts, trips the point breaker.
	do(t, "POST", ts.URL+"/instances/bomb/query", "PROB OBJECT leaf0", "text/plain")

	resp, body := do(t, "GET", ts.URL+"/v1/metrics", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d %s", resp.StatusCode, body)
	}
	var m struct {
		Server   map[string]any `json:"server"`
		Governor *struct {
			QueryMaxNodes int64                           `json:"query_max_nodes"`
			QueryMaxBytes int64                           `json:"query_max_bytes"`
			Breaker       map[string]govern.BreakerStatus `json:"breaker"`
		} `json:"governor"`
	}
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatal(err)
	}
	if m.Governor == nil {
		t.Fatalf("metrics missing governor section: %s", body)
	}
	if m.Governor.QueryMaxNodes != 1<<20 || m.Governor.QueryMaxBytes != 64<<20 {
		t.Fatalf("governor budget = %+v", m.Governor)
	}
	st, ok := m.Governor.Breaker["bomb.point"]
	if !ok || st.State != "open" {
		t.Fatalf("bomb.point breaker = %+v (ok=%v), want open", st, ok)
	}
	// The registry snapshot is a flat name → value map.
	if v, _ := m.Server["query_intractable"].(float64); v < 1 {
		t.Fatalf("query_intractable = %v, want >= 1", m.Server["query_intractable"])
	}
	if v, ok := m.Server["breaker_state.bomb.point"].(float64); !ok || v != 2 {
		t.Fatalf("breaker_state.bomb.point gauge = %v (ok=%v), want 2 (open)", v, ok)
	}
}

// TestChaosWidthBombShedding is the governor chaos drill: a stream of
// width-bomb queries hammers the server while health probes, writes, and
// healthy queries continue. Every bomb must be refused (intractable or
// shed by the breaker) and nothing else may degrade.
func TestChaosWidthBombShedding(t *testing.T) {
	_, ts := newGovServer(t, Config{
		QueryMaxNodes:    1 << 20,
		QueryMaxBytes:    64 << 20,
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
		BreakerProbes:    1,
	})
	if resp, body := do(t, "PUT", ts.URL+"/instances/bomb", widthBombText(t), "text/plain"); resp.StatusCode/100 != 2 {
		t.Fatalf("bomb upload: %d %s", resp.StatusCode, body)
	}
	do(t, "PUT", ts.URL+"/instances/bib", figure2Text(t), "text/plain")

	const attackers, rounds = 4, 8
	var wg sync.WaitGroup
	errs := make(chan string, attackers*rounds+3*rounds)
	for a := 0; a < attackers; a++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				resp, body := do(t, "POST", ts.URL+"/instances/bomb/query", "PROB OBJECT leaf0", "text/plain")
				e := apiv1.ErrorFromBody(resp.StatusCode, []byte(body))
				switch e.Code {
				case apiv1.CodeIntractable, apiv1.CodeBreakerOpen:
				default:
					errs <- "bomb query: code " + e.Code + " status " + resp.Status
				}
			}
		}()
	}
	// Meanwhile the control plane and healthy tenants stay unaffected.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if resp, _ := do(t, "GET", ts.URL+"/readyz", "", ""); resp.StatusCode != http.StatusOK {
				errs <- "readyz " + resp.Status
			}
			if resp, body := do(t, "PUT", ts.URL+"/instances/w"+string(rune('a'+i)), figure2Text(t), "text/plain"); resp.StatusCode/100 != 2 {
				errs <- "write: " + resp.Status + " " + body
			}
			if resp, body := do(t, "POST", ts.URL+"/instances/bib/query", "PROB OBJECT A1", "text/plain"); resp.StatusCode != http.StatusOK {
				errs <- "healthy query: " + resp.Status + " " + body
			}
		}
	}()
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

package server

// Replication wiring: the leader-side stream/bootstrap endpoints, the
// optional bearer-token gate over the admin and replication surfaces,
// and follower mode — a server whose store mirrors a leader's WAL via
// an embedded repl.Puller, serving all reads locally while 307-routing
// writes to the leader and gating readiness on replication staleness.

import (
	"context"
	"crypto/subtle"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"pxml/internal/apiv1"
	"pxml/internal/repl"
	"pxml/internal/retry"
	"pxml/internal/store"
)

// defaultReplMaxStaleness gates follower readiness unless
// Config.ReplMaxStaleness overrides it.
const defaultReplMaxStaleness = 10 * time.Second

// followerState is the replication machinery of a server running as a
// read replica.
type followerState struct {
	leaderURL    string
	puller       *repl.Puller
	maxStaleness time.Duration
	cancel       context.CancelFunc
	done         chan struct{}
}

// startFollower wires the puller into the server and starts the pull
// loop. Called from New after the store and engines are up.
func (s *Server) startFollower(cfg Config) error {
	client := &repl.Client{
		BaseURL: cfg.FollowLeader,
		Token:   cfg.FollowToken,
		// Stream long-polls; the client must outlive MaxPollWait.
		HTTPClient: &http.Client{Timeout: repl.MaxPollWait + 30*time.Second},
		// One cheap retry inside each round trip; the puller's own loop
		// handles real outages.
		Retry: retry.Policy{MaxAttempts: 2, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second},
	}
	maxStale := cfg.ReplMaxStaleness
	if maxStale <= 0 {
		maxStale = defaultReplMaxStaleness
	}
	var logf func(string, ...any)
	if s.log != nil {
		log := s.log
		logf = func(format string, args ...any) {
			log.Info(fmt.Sprintf(format, args...))
		}
	}
	puller, err := repl.NewPuller(repl.PullerConfig{
		Store:    s.store,
		Client:   client,
		PollWait: cfg.ReplPollWait,
		OnApply:  s.applyReplicated,
		Logf:     logf,
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	f := &followerState{
		leaderURL:    strings.TrimSuffix(cfg.FollowLeader, "/"),
		puller:       puller,
		maxStaleness: maxStale,
		cancel:       cancel,
		done:         make(chan struct{}),
	}
	s.follower = f
	go func() {
		defer close(f.done)
		err := puller.Run(ctx)
		if s.log != nil && err != nil && !errors.Is(err, context.Canceled) {
			s.log.Error("replication stopped", "leader", f.leaderURL, "error", err)
		}
	}()
	return nil
}

// stopFollower tears the pull loop down (idempotent).
func (s *Server) stopFollower() {
	if s.follower == nil {
		return
	}
	s.follower.cancel()
	<-s.follower.done
}

// applyReplicated refreshes the serving catalog after a replicated chunk
// commits: every changed instance gets a fresh engine (or is dropped),
// exactly as a local Put/Delete would have installed it.
func (s *Server) applyReplicated(res store.ApplyResult) {
	if len(res.Changed) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, name := range res.Changed {
		if pi, ok := s.store.Get(name); ok {
			s.engines[name] = s.newEngine(name, pi)
		} else {
			delete(s.engines, name)
			s.version.Add(1)
		}
	}
}

// Follower reports whether this server runs as a read replica, and if
// so of which leader.
func (s *Server) Follower() (leaderURL string, ok bool) {
	if s.follower == nil {
		return "", false
	}
	return s.follower.leaderURL, true
}

// ReplStatus returns the follower's replication status (zero Status and
// false on a leader).
func (s *Server) ReplStatus() (repl.Status, bool) {
	if s.follower == nil {
		return repl.Status{}, false
	}
	return s.follower.puller.Status(), true
}

// redirectToLeader answers a write request on a follower with a 307 onto
// the leader's equivalent URL (method- and body-preserving), reporting
// whether it did. p is the original v1 path (handlers run behind
// StripPrefix, so r.URL.Path has lost it).
func (s *Server) redirectToLeader(w http.ResponseWriter, r *http.Request) bool {
	if s.follower == nil {
		return false
	}
	target := s.follower.leaderURL + apiv1.Prefix + r.URL.Path
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	http.Redirect(w, r, target, http.StatusTemporaryRedirect)
	return true
}

// checkToken enforces the configured bearer token, answering 401 and
// reporting false when the request must not proceed. With no token
// configured everything passes.
func (s *Server) checkToken(w http.ResponseWriter, r *http.Request) bool {
	if s.adminToken == "" {
		return true
	}
	const scheme = "Bearer "
	auth := r.Header.Get("Authorization")
	if len(auth) > len(scheme) && strings.EqualFold(auth[:len(scheme)], scheme) &&
		subtle.ConstantTimeCompare([]byte(auth[len(scheme):]), []byte(s.adminToken)) == 1 {
		return true
	}
	w.Header().Set("WWW-Authenticate", `Bearer realm="pxmld"`)
	apiv1.WriteError(w, http.StatusUnauthorized, apiv1.CodeUnauthorized,
		"this endpoint requires the server's bearer token (Authorization: Bearer ...)")
	return false
}

// authAdmin gates the /v1/admin/* surface behind the bearer token when
// one is configured. It wraps the whole v1 chain (before admission's
// admin bypass) so no admin handler is reachable unauthenticated.
func (s *Server) authAdmin(next http.Handler) http.Handler {
	if s.adminToken == "" {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, apiv1.Prefix+"/admin/") && !s.checkToken(w, r) {
			return
		}
		next.ServeHTTP(w, r)
	})
}

// handleReplStream serves GET /v1/repl/stream. It is mounted outside the
// admission/inflight/deadline stack: a long-poll parked at the tail must
// not burn an inflight slot or be killed by the request deadline.
// Followers serve it too — their store streams exactly like a leader's,
// so replicas can chain.
func (s *Server) handleReplStream(w http.ResponseWriter, r *http.Request) {
	if !s.checkToken(w, r) {
		return
	}
	if s.store == nil {
		apiv1.WriteError(w, http.StatusConflict, apiv1.CodeConflict,
			"server has no durable store to replicate")
		return
	}
	repl.ServeStream(w, r, s.store)
}

// handleReplBootstrap serves GET /v1/repl/bootstrap: a tar of a fresh
// backup a new follower restores from.
func (s *Server) handleReplBootstrap(w http.ResponseWriter, r *http.Request) {
	if !s.checkToken(w, r) {
		return
	}
	if s.store == nil {
		apiv1.WriteError(w, http.StatusConflict, apiv1.CodeConflict,
			"server has no durable store to replicate")
		return
	}
	repl.ServeBootstrap(w, r, s.store)
}

// replMetrics is the "replication" section of /v1/metrics.
type replMetrics struct {
	Role          string  `json:"role"`
	Leader        string  `json:"leader,omitempty"`
	Pos           string  `json:"pos"`
	LeaderEnd     string  `json:"leader_end,omitempty"`
	LagBytes      int64   `json:"lag_bytes"`
	StalenessS    float64 `json:"staleness_s"`
	CaughtUp      bool    `json:"caught_up"`
	Diverged      bool    `json:"diverged"`
	Ready         bool    `json:"ready"`
	LastStampUnix float64 `json:"last_stamp_unix,omitempty"`
	LastErr       string  `json:"last_err,omitempty"`
	Chunks        int64   `json:"chunks_applied"`
	Bytes         int64   `json:"bytes_applied"`
	Records       int64   `json:"records_applied"`
	Reconnects    int64   `json:"reconnects"`
}

// replSection builds the metrics section and refreshes the exported
// replication gauges (repl_lag_bytes, repl_staleness_ms, repl_diverged)
// so the statsd stream carries them too. Returns nil on a server with
// no store.
func (s *Server) replSection() *replMetrics {
	if s.store == nil {
		return nil
	}
	if s.follower == nil {
		return &replMetrics{Role: "leader", Pos: s.store.Pos().String(), CaughtUp: true, Ready: true}
	}
	st := s.follower.puller.Status()
	staleness := st.Staleness(time.Now())
	ready := s.follower.puller.Ready(s.follower.maxStaleness)
	m := &replMetrics{
		Role:       "follower",
		Leader:     s.follower.leaderURL,
		Pos:        st.Pos.String(),
		LagBytes:   st.LagBytes,
		CaughtUp:   st.CaughtUp,
		Diverged:   st.Diverged,
		Ready:      ready,
		LastErr:    st.LastErr,
		Chunks:     st.ChunksApplied,
		Bytes:      st.BytesApplied,
		Records:    st.RecordsApplied,
		Reconnects: st.Reconnects,
	}
	if !st.LeaderEnd.IsZero() {
		m.LeaderEnd = st.LeaderEnd.String()
	}
	if st.LastStampNanos > 0 {
		m.LastStampUnix = float64(st.LastStampNanos) / 1e9
	}
	// Staleness saturates (diverged / never synced); report a sentinel
	// rather than a 292-year float.
	if staleness > 365*24*time.Hour {
		m.StalenessS = -1
	} else {
		m.StalenessS = staleness.Seconds()
	}
	s.reg.Gauge("repl_lag_bytes").Set(st.LagBytes)
	if m.StalenessS >= 0 {
		s.reg.Gauge("repl_staleness_ms").Set(staleness.Milliseconds())
	} else {
		s.reg.Gauge("repl_staleness_ms").Set(-1)
	}
	var div int64
	if st.Diverged {
		div = 1
	}
	s.reg.Gauge("repl_diverged").Set(div)
	return m
}

package server

// Replication wiring: the leader-side stream/bootstrap endpoints, the
// optional bearer-token gate over the admin and replication surfaces,
// and follower mode — a server whose store mirrors a leader's WAL via
// an embedded repl.Puller, serving all reads locally while 307-routing
// writes to the leader and gating readiness on replication staleness.

import (
	"context"
	"crypto/subtle"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"pxml/internal/apiv1"
	"pxml/internal/engine"
	"pxml/internal/repl"
	"pxml/internal/retry"
	"pxml/internal/store"
)

// defaultReplMaxStaleness gates follower readiness unless
// Config.ReplMaxStaleness overrides it.
const defaultReplMaxStaleness = 10 * time.Second

// followerState is the replication machinery of a server running as a
// read replica. The server holds it behind an atomic pointer so a
// promotion can atomically retire it while request handlers read it
// lock-free.
type followerState struct {
	client       *repl.Client
	puller       *repl.Puller
	maxStaleness time.Duration
	pullCancel   context.CancelFunc
	pullDone     chan struct{}

	// monCancel/monDone manage the failover monitor goroutine; nil
	// channels when no -failover-priority was configured.
	monCancel context.CancelFunc
	monDone   chan struct{}

	// mu guards leaderURL: the puller retargets it live when the old
	// leader's fenced 409 names a successor, and every 307 redirect
	// reads it.
	mu        sync.Mutex
	leaderURL string
}

// LeaderURL returns the current leader base URL — the configured
// -follow target until a fencing retarget moves it.
func (f *followerState) LeaderURL() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.leaderURL
}

func (f *followerState) setLeaderURL(u string) {
	f.mu.Lock()
	f.leaderURL = strings.TrimSuffix(u, "/")
	f.mu.Unlock()
}

// startFollower wires the puller (and, when configured, the failover
// monitor) into the server and starts the loops. Called from New after
// the store and engines are up, and from PromoteSelf when a failed
// drain rolls the promotion back.
func (s *Server) startFollower(cfg Config) error {
	client := &repl.Client{
		BaseURL: cfg.FollowLeader,
		Token:   cfg.FollowToken,
		// Stream long-polls; the client must outlive MaxPollWait.
		HTTPClient: &http.Client{Timeout: repl.MaxPollWait + 30*time.Second},
		// One cheap retry inside each round trip; the puller's own loop
		// handles real outages.
		Retry: retry.Policy{MaxAttempts: 2, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second},
	}
	maxStale := cfg.ReplMaxStaleness
	if maxStale <= 0 {
		maxStale = defaultReplMaxStaleness
	}
	f := &followerState{
		client:       client,
		maxStaleness: maxStale,
		pullDone:     make(chan struct{}),
		leaderURL:    strings.TrimSuffix(cfg.FollowLeader, "/"),
	}
	puller, err := repl.NewPuller(repl.PullerConfig{
		Store:      s.store,
		Client:     client,
		PollWait:   cfg.ReplPollWait,
		OnApply:    s.applyReplicated,
		OnRetarget: f.setLeaderURL,
		Logf:       s.logf(),
	})
	if err != nil {
		return err
	}
	f.puller = puller
	ctx, cancel := context.WithCancel(context.Background())
	f.pullCancel = cancel
	s.follower.Store(f)
	go func() {
		defer close(f.pullDone)
		err := puller.Run(ctx)
		if s.log != nil && err != nil && !errors.Is(err, context.Canceled) {
			s.log.Error("replication stopped", "leader", f.LeaderURL(), "error", err)
		}
	}()
	if cfg.FailoverPriority > 0 {
		mon, err := repl.NewMonitor(repl.MonitorConfig{
			Puller:   puller,
			Priority: cfg.FailoverPriority,
			Silence:  cfg.FailoverSilence,
			Promote: func(ctx context.Context) error {
				// The promotion cancels the monitor's own context as it
				// retires the follower state; detach so the in-flight
				// promotion (this very call) isn't aborted by that.
				_, err := s.PromoteSelf(context.WithoutCancel(ctx), true)
				return err
			},
			Logf: s.logf(),
		})
		if err != nil {
			cancel()
			<-f.pullDone
			return err
		}
		mctx, mcancel := context.WithCancel(context.Background())
		f.monCancel = mcancel
		f.monDone = make(chan struct{})
		go func() {
			defer close(f.monDone)
			_ = mon.Run(mctx)
		}()
	}
	return nil
}

// logf adapts the server's structured logger to the repl package's
// printf-style hooks (nil when logging is off).
func (s *Server) logf() func(string, ...any) {
	if s.log == nil {
		return nil
	}
	log := s.log
	return func(format string, args ...any) {
		log.Info(fmt.Sprintf(format, args...))
	}
}

// stopFollower tears the pull loop and monitor down (idempotent).
func (s *Server) stopFollower() {
	f := s.follower.Load()
	if f == nil {
		return
	}
	if f.monCancel != nil {
		f.monCancel()
		<-f.monDone
	}
	f.pullCancel()
	<-f.pullDone
}

// applyReplicated refreshes the serving catalog after a replicated chunk
// commits: every changed instance gets a fresh engine (or is dropped),
// exactly as a local Put/Delete would have installed it.
func (s *Server) applyReplicated(res store.ApplyResult) {
	if len(res.Changed) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// One copy-on-write publish per applied chunk. Names without an
	// engine yet stay lazy — Engine's slow path builds them from the
	// fresh store state on first query, so there is nothing stale to
	// replace.
	s.mutateEnginesLocked(func(m map[string]*engine.Engine) {
		for _, name := range res.Changed {
			if _, built := m[name]; !built {
				continue
			}
			if pi, ok := s.store.Get(name); ok {
				m[name] = s.newEngine(name, pi)
			} else {
				delete(m, name)
				s.version.Add(1)
			}
		}
	})
}

// Follower reports whether this server runs as a read replica, and if
// so of which leader.
func (s *Server) Follower() (leaderURL string, ok bool) {
	f := s.follower.Load()
	if f == nil {
		return "", false
	}
	return f.LeaderURL(), true
}

// ReplStatus returns the follower's replication status (zero Status and
// false on a leader).
func (s *Server) ReplStatus() (repl.Status, bool) {
	f := s.follower.Load()
	if f == nil {
		return repl.Status{}, false
	}
	return f.puller.Status(), true
}

// redirectToLeader answers a write request with a 307 onto the current
// leader's equivalent URL (method- and body-preserving), reporting
// whether it did. On a follower the target is the live leader URL — the
// configured -follow address until a failover retargets it — never a
// value cached at redirect-construction time. A fenced ex-leader
// redirects too, once it knows its successor; before that, writes fall
// through to the store's epoch_fenced rejection.
func (s *Server) redirectToLeader(w http.ResponseWriter, r *http.Request) bool {
	var leader string
	if f := s.follower.Load(); f != nil {
		leader = f.LeaderURL()
	} else if s.store != nil {
		if fenced, _, url := s.store.Fenced(); fenced {
			leader = url
		}
	}
	if leader == "" {
		return false
	}
	target := leader + apiv1.Prefix + r.URL.Path
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	http.Redirect(w, r, target, http.StatusTemporaryRedirect)
	return true
}

// checkToken enforces the configured bearer token, answering 401 and
// reporting false when the request must not proceed. With no token
// configured everything passes.
func (s *Server) checkToken(w http.ResponseWriter, r *http.Request) bool {
	if s.adminToken == "" {
		return true
	}
	const scheme = "Bearer "
	auth := r.Header.Get("Authorization")
	if len(auth) > len(scheme) && strings.EqualFold(auth[:len(scheme)], scheme) &&
		subtle.ConstantTimeCompare([]byte(auth[len(scheme):]), []byte(s.adminToken)) == 1 {
		return true
	}
	w.Header().Set("WWW-Authenticate", `Bearer realm="pxmld"`)
	apiv1.WriteError(w, http.StatusUnauthorized, apiv1.CodeUnauthorized,
		"this endpoint requires the server's bearer token (Authorization: Bearer ...)")
	return false
}

// authAdmin gates the /v1/admin/* surface behind the bearer token when
// one is configured. It wraps the whole v1 chain (before admission's
// admin bypass) so no admin handler is reachable unauthenticated.
func (s *Server) authAdmin(next http.Handler) http.Handler {
	if s.adminToken == "" {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, apiv1.Prefix+"/admin/") && !s.checkToken(w, r) {
			return
		}
		next.ServeHTTP(w, r)
	})
}

// handleReplStream serves GET /v1/repl/stream. It is mounted outside the
// admission/inflight/deadline stack: a long-poll parked at the tail must
// not burn an inflight slot or be killed by the request deadline.
// Followers serve it too — their store streams exactly like a leader's,
// so replicas can chain.
func (s *Server) handleReplStream(w http.ResponseWriter, r *http.Request) {
	if !s.checkToken(w, r) {
		return
	}
	if s.store == nil {
		apiv1.WriteError(w, http.StatusConflict, apiv1.CodeConflict,
			"server has no durable store to replicate")
		return
	}
	// A pull request carrying a higher epoch than ours is proof a
	// follower was promoted while we thought we were still the leader:
	// fence before serving a byte (see failover.go).
	repl.ServeStream(w, r, s.store, func(epoch uint64) { s.fenceSelf(epoch, "") })
}

// handleReplBootstrap serves GET /v1/repl/bootstrap: a tar of a fresh
// backup a new follower restores from.
func (s *Server) handleReplBootstrap(w http.ResponseWriter, r *http.Request) {
	if !s.checkToken(w, r) {
		return
	}
	if s.store == nil {
		apiv1.WriteError(w, http.StatusConflict, apiv1.CodeConflict,
			"server has no durable store to replicate")
		return
	}
	repl.ServeBootstrap(w, r, s.store)
}

// replMetrics is the "replication" section of /v1/metrics.
type replMetrics struct {
	Role          string  `json:"role"`
	Epoch         uint64  `json:"epoch"`
	Leader        string  `json:"leader,omitempty"`
	Pos           string  `json:"pos"`
	LeaderEnd     string  `json:"leader_end,omitempty"`
	LagBytes      int64   `json:"lag_bytes"`
	StalenessS    float64 `json:"staleness_s"`
	CaughtUp      bool    `json:"caught_up"`
	Diverged      bool    `json:"diverged"`
	Ready         bool    `json:"ready"`
	LastStampUnix float64 `json:"last_stamp_unix,omitempty"`
	LastErr       string  `json:"last_err,omitempty"`
	Chunks        int64   `json:"chunks_applied"`
	Bytes         int64   `json:"bytes_applied"`
	Records       int64   `json:"records_applied"`
	Reconnects    int64   `json:"reconnects"`
}

// replSection builds the metrics section and refreshes the exported
// replication gauges (repl_lag_bytes, repl_staleness_ms, repl_diverged)
// so the statsd stream carries them too. Returns nil on a server with
// no store.
func (s *Server) replSection() *replMetrics {
	if s.store == nil {
		return nil
	}
	epoch := s.store.Epoch()
	s.reg.Gauge("repl_epoch").Set(int64(epoch))
	f := s.follower.Load()
	if f == nil {
		m := &replMetrics{Role: "leader", Epoch: epoch, Pos: s.store.Pos().String(), CaughtUp: true, Ready: true}
		if fenced, _, leader := s.store.Fenced(); fenced {
			m.Role = "fenced"
			m.Leader = leader
			m.CaughtUp = false
			m.Ready = false
		}
		return m
	}
	st := f.puller.Status()
	staleness := st.Staleness(time.Now())
	ready := f.puller.Ready(f.maxStaleness)
	m := &replMetrics{
		Role:       "follower",
		Epoch:      epoch,
		Leader:     f.LeaderURL(),
		Pos:        st.Pos.String(),
		LagBytes:   st.LagBytes,
		CaughtUp:   st.CaughtUp,
		Diverged:   st.Diverged,
		Ready:      ready,
		LastErr:    st.LastErr,
		Chunks:     st.ChunksApplied,
		Bytes:      st.BytesApplied,
		Records:    st.RecordsApplied,
		Reconnects: st.Reconnects,
	}
	if !st.LeaderEnd.IsZero() {
		m.LeaderEnd = st.LeaderEnd.String()
	}
	if st.LastStampNanos > 0 {
		m.LastStampUnix = float64(st.LastStampNanos) / 1e9
	}
	// Staleness saturates (diverged / never synced); report a sentinel
	// rather than a 292-year float.
	if staleness > 365*24*time.Hour {
		m.StalenessS = -1
	} else {
		m.StalenessS = staleness.Seconds()
	}
	s.reg.Gauge("repl_lag_bytes").Set(st.LagBytes)
	if m.StalenessS >= 0 {
		s.reg.Gauge("repl_staleness_ms").Set(staleness.Milliseconds())
	} else {
		s.reg.Gauge("repl_staleness_ms").Set(-1)
	}
	var div int64
	if st.Diverged {
		div = 1
	}
	s.reg.Gauge("repl_diverged").Set(div)
	return m
}

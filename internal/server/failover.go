package server

// Supervised failover: promoting a follower into the leader role, and
// the fencing machinery that keeps the old leader from ever accepting a
// write once it has been superseded.
//
// The protocol has no quorum — it is supervised (an operator or the
// flag-gated failover monitor decides), and split-brain is prevented by
// epoch fencing instead of election:
//
//  1. Promote (POST /v1/admin/promote on a follower) stops the puller,
//     drains the final chunks from the old leader if it is still
//     reachable, bumps the persisted epoch, and flips the store into
//     leader mode live. Without -force a failed drain rolls back to
//     following and reports the exact byte gap; with force the gap is
//     reported but the promotion proceeds (those unreplicated
//     acknowledged writes are lost — the operator chose availability).
//  2. The new leader best-effort notifies the old one (POST
//     /v1/admin/demote) so it fences immediately instead of on first
//     contact with the new era.
//  3. Every other path a stale leader could learn the truth from also
//     fences it: followers' pull requests carry their highest-seen
//     epoch (see ServeStream's onSuperseded), and a leader with
//     configured peers probes their /v1/repl/epoch — once at startup
//     *before serving any write* (so a rebooted old leader cannot
//     accept even one), and periodically while running.
//
// Fencing is sticky and persisted (see store/epoch.go): a fenced node
// serves reads, 307s writes to its successor once it knows one, and
// rejoins the cluster only by wiping its data directory and
// re-bootstrapping as a follower.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"pxml/internal/apiv1"
	"pxml/internal/repl"
	"pxml/internal/store"
)

// defaultProbeInterval paces the peer epoch probe while leading, unless
// Config.ProbeInterval overrides it.
const defaultProbeInterval = 5 * time.Second

// drainWindow bounds how long a promotion tries to pull the final
// chunks out of the old leader before deciding it is unreachable.
const drainWindow = 5 * time.Second

// promoteResult is the POST /v1/admin/promote response body.
type promoteResult struct {
	// Epoch is the new leadership era this node now writes under.
	Epoch uint64 `json:"epoch"`
	// Pos is the WAL position at promotion.
	Pos string `json:"pos"`
	// Forced reports that -force semantics applied.
	Forced bool `json:"forced"`
	// Drained reports whether the old leader was fully drained before
	// the role flip; false means GapBytes acknowledged bytes (as of the
	// last successful contact) may be lost.
	Drained bool `json:"drained"`
	// GapBytes is the known byte lag behind the old leader when the
	// drain gave up (0 when drained, or when the old leader was never
	// reachable to measure).
	GapBytes int64 `json:"gap_bytes"`
	// DrainErr is the final drain error when Drained is false.
	DrainErr string `json:"drain_err,omitempty"`
}

// PromoteSelf turns this follower into the leader: stop pulling, drain
// what remains on the old leader, bump the epoch durably, flip the
// store's role live, and start serving writes. Without force a failed
// drain aborts the promotion and resumes following (the returned error
// reports the position gap); with force the promotion proceeds anyway.
// Safe for concurrent callers; the losers of the race get
// store.ErrNotFollower once the winner has flipped.
func (s *Server) PromoteSelf(ctx context.Context, force bool) (*promoteResult, error) {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	f := s.follower.Load()
	if f == nil {
		return nil, fmt.Errorf("%w: this node is not following anyone", store.ErrNotFollower)
	}
	// Retire the monitor (it must not fire a second promotion mid-flight;
	// if it is the caller, its context was detached) and stop the puller
	// so the drain below owns the client exclusively.
	if f.monCancel != nil {
		f.monCancel()
	}
	f.pullCancel()
	<-f.pullDone

	res := &promoteResult{Forced: force}
	drainErr := s.drainOldLeader(ctx, f, res)
	if drainErr != nil && !force {
		// Roll back to following: rebuild the pull loop against the
		// current leader URL and report the gap. cfg mirrors the original
		// follower configuration with the live (possibly retargeted)
		// leader address.
		cfg := s.cfg
		cfg.FollowLeader = f.LeaderURL()
		if err := s.startFollower(cfg); err != nil {
			return nil, fmt.Errorf("promote aborted (%v) and follower restart failed: %v", drainErr, err)
		}
		return nil, fmt.Errorf("promote aborted: old leader not drained (gap %d bytes as of last contact): %w (use force to promote anyway and accept the loss)",
			res.GapBytes, drainErr)
	}
	epoch, err := s.store.Promote()
	if err != nil {
		// The store refused (degraded, closed, or lost a promote race).
		// Resume following so the node is not left in limbo.
		cfg := s.cfg
		cfg.FollowLeader = f.LeaderURL()
		if rerr := s.startFollower(cfg); rerr != nil && s.log != nil {
			s.log.Error("follower restart after failed promote", "error", rerr)
		}
		return nil, err
	}
	s.follower.Store(nil)
	res.Epoch = epoch
	res.Pos = s.store.Pos().String()
	res.Drained = drainErr == nil
	if drainErr != nil {
		res.DrainErr = drainErr.Error()
	}
	if s.log != nil {
		s.log.Info("promoted to leader", "epoch", epoch, "pos", res.Pos,
			"drained", res.Drained, "gap_bytes", res.GapBytes, "forced", force)
	}
	// The old leader (if it ever comes back) must learn it was
	// superseded even before any follower contacts it.
	go s.notifyDemote(f.LeaderURL(), epoch)
	s.startProber()
	return res, nil
}

// drainOldLeader pulls the remaining WAL out of the old leader until
// caught up, filling res.GapBytes with the best known byte gap when it
// cannot finish. The puller is stopped, so the follower store and the
// repl client are exclusively ours here.
func (s *Server) drainOldLeader(ctx context.Context, f *followerState, res *promoteResult) error {
	st, _ := s.ReplStatusOf(f)
	res.GapBytes = st.LagBytes
	if st.Diverged {
		return fmt.Errorf("follower diverged from the old leader; its history is not drainable")
	}
	dctx, cancel := context.WithTimeout(ctx, drainWindow)
	defer cancel()
	var lastErr error
	for {
		if dctx.Err() != nil {
			if lastErr == nil {
				lastErr = dctx.Err()
			}
			return fmt.Errorf("drain window expired: %w", lastErr)
		}
		from := s.store.Pos()
		// Short poll: we want "is there anything left", not a parked tail.
		chunk, err := f.client.Stream(dctx, from, repl.MaxChunkBytes, 50*time.Millisecond, s.store.Epoch())
		if err != nil {
			if errors.Is(err, repl.ErrDiverged) {
				return fmt.Errorf("old leader rejected our position as diverged: %w", err)
			}
			lastErr = err
			// Brief pause, then retry inside the window: the old leader
			// may be mid-crash but its listener still settling.
			select {
			case <-dctx.Done():
			case <-time.After(100 * time.Millisecond):
			}
			continue
		}
		res.GapBytes = chunk.LagBytes
		if len(chunk.Data) == 0 && chunk.From == from {
			res.GapBytes = 0
			return nil // caught up: nothing acknowledged is left behind
		}
		applied, err := s.store.ReplApply(chunk.From, chunk.Epoch, chunk.Data)
		if err != nil {
			return fmt.Errorf("drain apply at %s: %w", chunk.From, err)
		}
		s.applyReplicated(applied)
	}
}

// ReplStatusOf is ReplStatus for an explicit follower state (used while
// the atomic pointer still names it during a promotion).
func (s *Server) ReplStatusOf(f *followerState) (repl.Status, bool) {
	if f == nil {
		return repl.Status{}, false
	}
	return f.puller.Status(), true
}

// fenceSelf fences this node at epoch (recording leaderURL when known),
// logging the transition once. No-op on followers and on stale epochs.
func (s *Server) fenceSelf(epoch uint64, leaderURL string) {
	if s.store == nil || s.store.IsFollower() {
		return
	}
	alreadyFenced, _, _ := s.store.Fenced()
	if err := s.store.Fence(epoch, leaderURL); err != nil {
		if s.log != nil && !alreadyFenced {
			s.log.Warn("fence refused", "epoch", epoch, "error", err)
		}
		return
	}
	if s.log != nil && !alreadyFenced {
		s.log.Warn("fenced: superseded by a higher leader epoch; writes now redirect/reject",
			"epoch", epoch, "new_leader", leaderURL)
	}
}

// notifyDemote tells the old leader it has been superseded. Best
// effort: the old leader is usually dead at this point — if it is not,
// this is what flips it read-only before any client retries a write
// against it.
func (s *Server) notifyDemote(oldLeader string, epoch uint64) {
	if oldLeader == "" {
		return
	}
	body, _ := json.Marshal(map[string]any{"epoch": epoch, "leader": s.advertiseURL})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimSuffix(oldLeader, "/")+apiv1.Prefix+"/admin/demote", strings.NewReader(string(body)))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if s.outboundToken != "" {
		req.Header.Set("Authorization", "Bearer "+s.outboundToken)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		if s.log != nil {
			s.log.Info("demote notification undeliverable (old leader down?)", "target", oldLeader, "error", err)
		}
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	resp.Body.Close()
}

// epochInfo is the GET /v1/repl/epoch response body.
type epochInfo struct {
	Epoch uint64 `json:"epoch"`
	Role  string `json:"role"`
	// Leader is where writes belong, as far as this node knows: its own
	// advertise URL when leading, its leader when following, its
	// successor when fenced. Empty when unknown.
	Leader string `json:"leader,omitempty"`
}

func (s *Server) epochInfo() epochInfo {
	info := epochInfo{Epoch: s.store.Epoch()}
	switch {
	case s.store.IsFollower():
		info.Role = "follower"
		if f := s.follower.Load(); f != nil {
			info.Leader = f.LeaderURL()
		}
	default:
		if fenced, _, leader := s.store.Fenced(); fenced {
			info.Role = "fenced"
			info.Leader = leader
		} else {
			info.Role = "leader"
			info.Leader = s.advertiseURL
		}
	}
	return info
}

// handleReplEpoch serves GET /v1/repl/epoch: the lightweight peer epoch
// probe. Token-gated like the rest of the replication surface, mounted
// outside admission so probes keep answering under load.
func (s *Server) handleReplEpoch(w http.ResponseWriter, r *http.Request) {
	if !s.checkToken(w, r) {
		return
	}
	if s.store == nil {
		apiv1.WriteError(w, http.StatusConflict, apiv1.CodeConflict,
			"server has no durable store, hence no replication epoch")
		return
	}
	writeJSON(w, http.StatusOK, s.epochInfo())
}

// handlePromote serves POST /v1/admin/promote?force=1 on a follower.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		httpError(w, http.StatusConflict, apiv1.CodeConflict, fmt.Errorf("server has no durable store to promote"))
		return
	}
	force := r.URL.Query().Get("force") != ""
	res, err := s.PromoteSelf(r.Context(), force)
	if err != nil {
		switch {
		case errors.Is(err, store.ErrNotFollower):
			httpError(w, http.StatusConflict, apiv1.CodeNotFollower, err)
		case errors.Is(err, store.ErrDegraded):
			apiv1.WriteErrorRetry(w, http.StatusServiceUnavailable, apiv1.CodeDegraded, err.Error(), time.Second)
		default:
			httpError(w, http.StatusConflict, apiv1.CodeConflict, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleDemote serves POST /v1/admin/demote: the new leader (or an
// operator) telling this node a higher epoch exists. The node fences
// itself when the claim is higher than its own era; a stale or equal
// claim is refused — fencing on rumor alone would let any caller with
// the token turn the real leader read-only.
func (s *Server) handleDemote(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		httpError(w, http.StatusConflict, apiv1.CodeConflict, fmt.Errorf("server has no durable store to demote"))
		return
	}
	var req struct {
		Epoch  uint64 `json:"epoch"`
		Leader string `json:"leader"`
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4<<10))
	if err != nil {
		httpDecodeError(w, err)
		return
	}
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, apiv1.CodeInvalidRequest, fmt.Errorf("decode demote request: %w", err))
		return
	}
	if req.Epoch == 0 {
		httpError(w, http.StatusBadRequest, apiv1.CodeInvalidRequest, fmt.Errorf("demote needs the superseding epoch"))
		return
	}
	if s.store.IsFollower() {
		httpError(w, http.StatusConflict, apiv1.CodeConflict, fmt.Errorf("node is already a follower"))
		return
	}
	own := s.store.Epoch()
	fenced, _, _ := s.store.Fenced()
	if req.Epoch < own || (req.Epoch == own && !fenced) {
		httpError(w, http.StatusConflict, apiv1.CodeConflict,
			fmt.Errorf("demote at epoch %d refused: this node's epoch %d is not superseded", req.Epoch, own))
		return
	}
	s.fenceSelf(req.Epoch, req.Leader)
	writeJSON(w, http.StatusOK, s.epochInfo())
}

// probePeersOnce asks every configured peer for its epoch, fencing this
// node if any reports a higher era (or the same era led by someone
// else's successor — impossible without a higher epoch, so higher is
// the only trigger). Returns the highest epoch seen. Unreachable peers
// are no objection: without a quorum this probe cannot distinguish a
// dead peer from a partitioned one, which is exactly why promotion is
// supervised.
func (s *Server) probePeersOnce(ctx context.Context) uint64 {
	var highest uint64
	for _, peer := range s.peers {
		info, err := s.probePeer(ctx, peer)
		if err != nil {
			continue
		}
		if info.Epoch > highest {
			highest = info.Epoch
		}
		if s.store != nil && info.Epoch > s.store.Epoch() {
			// info.Leader names where writes belong as far as that peer
			// knows, whatever its role; trust it the same way the fenced
			// 409's X-Pxml-Repl-Leader header is trusted.
			s.fenceSelf(info.Epoch, info.Leader)
		}
	}
	return highest
}

func (s *Server) probePeer(ctx context.Context, peer string) (epochInfo, error) {
	pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet,
		strings.TrimSuffix(peer, "/")+repl.EpochPath, nil)
	if err != nil {
		return epochInfo{}, err
	}
	if s.outboundToken != "" {
		req.Header.Set("Authorization", "Bearer "+s.outboundToken)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return epochInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return epochInfo{}, fmt.Errorf("peer %s: HTTP %d", peer, resp.StatusCode)
	}
	var info epochInfo
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<10)).Decode(&info); err != nil {
		return epochInfo{}, err
	}
	return info, nil
}

// startProber starts the periodic peer epoch probe, once. It runs while
// the node believes it is the leader and stops at Close; a fenced or
// demoted node keeps probing harmlessly (fenceSelf no-ops).
func (s *Server) startProber() {
	if len(s.peers) == 0 {
		return
	}
	s.proberMu.Lock()
	defer s.proberMu.Unlock()
	if s.proberDone != nil {
		return // already running
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.proberCancel = cancel
	done := make(chan struct{})
	s.proberDone = done
	interval := s.probeInterval
	if interval <= 0 {
		interval = defaultProbeInterval
	}
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			if s.store == nil || s.store.IsFollower() {
				continue
			}
			s.probePeersOnce(ctx)
		}
	}()
}

// stopProber stops the periodic probe (idempotent; Close path).
func (s *Server) stopProber() {
	s.proberMu.Lock()
	cancel, done := s.proberCancel, s.proberDone
	s.proberCancel, s.proberDone = nil, nil
	s.proberMu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
}

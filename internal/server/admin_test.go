package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"testing"

	"pxml/internal/fixtures"
	"pxml/internal/store"
)

func TestAdminBackupEndpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := NewPersistent(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("bib", fixtures.Figure2()); err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	s.SetBackupRoot(root)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// No destination → 400.
	resp, body := do(t, "POST", ts.URL+"/admin/backup", "", "application/json")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("backup without dir: status %d: %s", resp.StatusCode, body)
	}

	resp, body = do(t, "POST", ts.URL+"/admin/backup", `{"dir": "bkup"}`, "application/json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("backup: status %d: %s", resp.StatusCode, body)
	}
	var man store.Manifest
	if err := json.Unmarshal([]byte(body), &man); err != nil {
		t.Fatalf("backup response not a manifest: %v (%s)", err, body)
	}
	if man.Instances != 1 || man.Format != store.ManifestFormat {
		t.Fatalf("implausible manifest from endpoint: %+v", man)
	}
	bdir := filepath.Join(root, "bkup")
	if _, err := store.VerifyBackup(nil, bdir); err != nil {
		t.Fatalf("endpoint backup fails verification: %v", err)
	}

	// The backup restores to a working catalog.
	target := filepath.Join(t.TempDir(), "restored")
	if _, err := store.Restore(bdir, target, store.RestoreOptions{}); err != nil {
		t.Fatal(err)
	}
	r, err := NewPersistent(target)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if pi, ok := r.Get("bib"); !ok || pi.NumObjects() != 11 {
		t.Fatalf("restored bib = %v", pi)
	}

	// Backing up into the same (now non-empty) destination fails cleanly.
	resp, body = do(t, "POST", ts.URL+"/admin/backup?dir=bkup", "", "application/json")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("backup into non-empty dir: status %d: %s", resp.StatusCode, body)
	}
}

func TestAdminBackupConfinedToRoot(t *testing.T) {
	dir := t.TempDir()
	s, err := NewPersistent(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Without a configured backup root the endpoint is disabled outright.
	resp, body := do(t, "POST", ts.URL+"/admin/backup?dir=x", "", "application/json")
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("backup without root: status %d: %s", resp.StatusCode, body)
	}

	s.SetBackupRoot(t.TempDir())
	for _, dest := range []string{"/etc/pxml-pwned", "../escape", "a/../../escape", ".", "sub/.."} {
		resp, body := do(t, "POST", ts.URL+"/admin/backup?dir="+url.QueryEscape(dest), "", "application/json")
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("backup dir=%q: status %d (want 400): %s", dest, resp.StatusCode, body)
		}
	}

	// Nested relative names are fine — still under the root.
	resp, body = do(t, "POST", ts.URL+"/admin/backup?dir="+url.QueryEscape("nightly/mon"), "", "application/json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("backup dir=nightly/mon: status %d: %s", resp.StatusCode, body)
	}
}

func TestAdminBackupWithoutStore(t *testing.T) {
	s := MustNew(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := do(t, "POST", ts.URL+"/admin/backup?dir=/tmp/x", "", "application/json")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("backup on memory-only server: status %d: %s", resp.StatusCode, body)
	}
	resp, body = do(t, "POST", ts.URL+"/admin/scrub", "", "application/json")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("scrub on memory-only server: status %d: %s", resp.StatusCode, body)
	}
}

func TestAdminScrubEndpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := NewPersistent(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("bib", fixtures.Figure2()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := do(t, "POST", ts.URL+"/admin/scrub", "", "application/json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrub: status %d: %s", resp.StatusCode, body)
	}
}

package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"pxml/internal/fixtures"
	"pxml/internal/store"
)

func TestAdminBackupEndpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := NewPersistent(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("bib", fixtures.Figure2()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// No destination → 400.
	resp, body := do(t, "POST", ts.URL+"/admin/backup", "", "application/json")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("backup without dir: status %d: %s", resp.StatusCode, body)
	}

	bdir := filepath.Join(t.TempDir(), "bkup")
	resp, body = do(t, "POST", ts.URL+"/admin/backup", `{"dir": "`+bdir+`"}`, "application/json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("backup: status %d: %s", resp.StatusCode, body)
	}
	var man store.Manifest
	if err := json.Unmarshal([]byte(body), &man); err != nil {
		t.Fatalf("backup response not a manifest: %v (%s)", err, body)
	}
	if man.Instances != 1 || man.Format != store.ManifestFormat {
		t.Fatalf("implausible manifest from endpoint: %+v", man)
	}
	if _, err := store.VerifyBackup(nil, bdir); err != nil {
		t.Fatalf("endpoint backup fails verification: %v", err)
	}

	// The backup restores to a working catalog.
	target := filepath.Join(t.TempDir(), "restored")
	if _, err := store.Restore(bdir, target, store.RestoreOptions{}); err != nil {
		t.Fatal(err)
	}
	r, err := NewPersistent(target)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if pi, ok := r.Get("bib"); !ok || pi.NumObjects() != 11 {
		t.Fatalf("restored bib = %v", pi)
	}

	// Backing up into the same (now non-empty) directory fails cleanly.
	resp, body = do(t, "POST", ts.URL+"/admin/backup?dir="+bdir, "", "application/json")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("backup into non-empty dir: status %d: %s", resp.StatusCode, body)
	}
}

func TestAdminBackupWithoutStore(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := do(t, "POST", ts.URL+"/admin/backup?dir=/tmp/x", "", "application/json")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("backup on memory-only server: status %d: %s", resp.StatusCode, body)
	}
	resp, body = do(t, "POST", ts.URL+"/admin/scrub", "", "application/json")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("scrub on memory-only server: status %d: %s", resp.StatusCode, body)
	}
}

func TestAdminScrubEndpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := NewPersistent(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("bib", fixtures.Figure2()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := do(t, "POST", ts.URL+"/admin/scrub", "", "application/json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrub: status %d: %s", resp.StatusCode, body)
	}
}

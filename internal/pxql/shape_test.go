package pxql

import "testing"

// TestClassifyShapeAgreesWithParse: the lexical classifier must agree with
// the parser's canonical op on every statement Parse accepts.
func TestClassifyShapeAgreesWithParse(t *testing.T) {
	statements := []string{
		"PROJECT R.book.author",
		"SINGLE R.book.author",
		"DESCEND R.book",
		"SELECT R.book = B1",
		"SELECT VAL(R.book.title) = Lore",
		"PROB R.book.author = A1",
		"PROB EXISTS R.book.author",
		"PROB VAL(R.book.title) = Lore",
		"PROB OBJECT A1",
		"CHAIN R.B1.A1",
		"COUNT R.book",
		"MARGINALS",
		"WORLDS 3",
		"TOPK 2",
		"ESTIMATE 100 EXISTS R.book",
		"ESTIMATE 100 R.book = B1",
		"STATS",
		"  stats  ", // case- and whitespace-insensitive
	}
	for _, stmt := range statements {
		q, err := Parse(stmt)
		if err != nil {
			t.Fatalf("Parse(%q): %v", stmt, err)
		}
		if got, want := ClassifyShape(stmt), q.Shape(); got != want {
			t.Errorf("ClassifyShape(%q) = %q, parsed shape = %q (op %q)", stmt, got, want, q.Op)
		}
	}
}

func TestShapeValues(t *testing.T) {
	cases := map[string]string{
		"PROJECT R.a":            ShapeProject,
		"SELECT R.a = X":         ShapeSelect,
		"PROB R.a = X":           ShapePoint,
		"PROB EXISTS R.a":        ShapeExists,
		"PROB VAL(R.a) = v":      ShapeExists,
		"WORLDS":                 ShapeEnum,
		"ESTIMATE 10 EXISTS R.a": ShapeEstimate,
		"STATS":                  ShapeStats,
		"FROBNICATE the widget":  ShapeOther,
		"":                       ShapeOther,
	}
	for stmt, want := range cases {
		if got := ClassifyShape(stmt); got != want {
			t.Errorf("ClassifyShape(%q) = %q, want %q", stmt, got, want)
		}
	}
}

package pxql

import "strings"

// Statement shapes: the coarse cost classes the server's telemetry tracks
// per statement. PXML inference cost varies by orders of magnitude with
// the statement's shape — a cached point probability is nanoseconds while
// enumeration or cold DAG inference can run for seconds — so latency
// percentiles are only meaningful per shape.
const (
	ShapeProject  = "project"   // PROJECT / SINGLE / DESCEND (ancestor, single, descendant projection)
	ShapeSelect   = "select"    // SELECT (object / value / cardinality selection)
	ShapeProduct  = "product"   // binary algebra (cartesian product, join)
	ShapePoint    = "point"     // PROB point / value / object / CHAIN (single-object inference)
	ShapeExists   = "exists"    // PROB EXISTS / PROB VAL (path-existence inference)
	ShapeEnum     = "enumerate" // WORLDS / TOPK / COUNT / MARGINALS (world-space work)
	ShapeEstimate = "estimate"  // ESTIMATE (Monte-Carlo sampling)
	ShapeStats    = "stats"     // STATS (instance summary)
	ShapeBatch    = "batch"     // engine-level batched point queries (no statement form)
	ShapeOther    = "other"     // unknown or unparsable statements
)

// Shape returns the parsed query's statement shape.
func (q Query) Shape() string { return shapeOfOp(q.Op) }

// shapeOfOp maps a canonical Query.Op to its shape.
func shapeOfOp(op string) string {
	switch op {
	case "project", "single", "descend":
		return ShapeProject
	case "select":
		return ShapeSelect
	case "product", "join":
		return ShapeProduct
	case "prob-point", "prob-object", "chain":
		return ShapePoint
	case "prob-exists", "prob-value":
		return ShapeExists
	case "worlds", "topk", "count", "marginals":
		return ShapeEnum
	case "estimate-exists", "estimate-point":
		return ShapeEstimate
	case "stats":
		return ShapeStats
	}
	return ShapeOther
}

// ClassifyShape determines a statement's shape lexically — first keyword,
// plus the PROB sub-form — without a full parse, so callers on the hot
// path (the engine's per-statement latency hook) can classify a cache-hit
// statement without paying Parse again. It agrees with Query.Shape for
// every statement Parse accepts.
func ClassifyShape(statement string) string {
	kw, rest := nextField(statement)
	switch strings.ToUpper(kw) {
	case "PROJECT", "SINGLE", "DESCEND":
		return ShapeProject
	case "SELECT":
		return ShapeSelect
	case "PRODUCT", "JOIN":
		return ShapeProduct
	case "PROB":
		sub, _ := nextField(rest)
		switch strings.ToUpper(sub) {
		case "EXISTS", "VAL", "VAL(":
			return ShapeExists
		default:
			if strings.HasPrefix(strings.ToUpper(sub), "VAL(") {
				return ShapeExists
			}
			return ShapePoint
		}
	case "CHAIN":
		return ShapePoint
	case "WORLDS", "TOPK", "COUNT", "MARGINALS":
		return ShapeEnum
	case "ESTIMATE":
		return ShapeEstimate
	case "STATS":
		return ShapeStats
	}
	return ShapeOther
}

// nextField returns the first whitespace-delimited field of s and the
// remainder, without allocating a full Fields slice.
func nextField(s string) (field, rest string) {
	s = strings.TrimSpace(s)
	i := strings.IndexFunc(s, func(r rune) bool { return r == ' ' || r == '\t' || r == '\n' || r == '\r' })
	if i < 0 {
		return s, ""
	}
	return s[:i], s[i:]
}

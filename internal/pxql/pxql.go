// Package pxql implements a small textual query language over PXML
// probabilistic instances, wrapping the paper's algebra and queries in the
// spirit of its Section 8 discussion of XPath/XQuery (path expressions
// locate objects; the operators manipulate whole probabilistic instances).
//
// Statements (keywords are case-insensitive; paths use the Definition 5.1
// dotted form):
//
//	PROJECT R.book.author                 ancestor projection Λ_p
//	SINGLE  R.book.author                 single projection (extension)
//	DESCEND R.book.author                 descendant projection (extension)
//	SELECT R.book = B1 [AND ...]          object selection σ (conjunctions allowed)
//	SELECT VAL(R.book.title) = Lore       value selection
//	SELECT CARD(R.book = B1, author) IN [1,2]
//	                                      cardinality selection
//	PROB R.book.author = A1               point query P(o ∈ p)
//	PROB EXISTS R.book.author             existence query
//	PROB VAL(R.book.title) = Lore         value-existence query
//	PROB OBJECT A1                        existence marginal (BN; works on DAGs)
//	CHAIN R.B1.A1                         chain probability (object ids!)
//	COUNT <path>                          distribution of |{o : o ∈ p}| with its
//	                                      expectation (tree instances)
//	MARGINALS                             P(o exists) for every object
//	WORLDS [n]                            possible worlds (top n by probability)
//	TOPK n                                the n most probable worlds via
//	                                      best-first search (no full enumeration)
//	ESTIMATE n EXISTS <path>              Monte-Carlo estimate of P(∃o. o ∈ p)
//	ESTIMATE n <path> = <obj>             Monte-Carlo estimate of P(o ∈ p)
//	                                      (n forward samples; reproducible seed)
//	STATS                                 instance summary
//
// Exec returns a Result whose Instance field is set for algebra statements
// and whose Prob/Text fields carry scalar answers and rendered output.
package pxql

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"pxml/internal/algebra"
	"pxml/internal/bayes"
	"pxml/internal/core"
	"pxml/internal/enumerate"
	"pxml/internal/govern"
	"pxml/internal/model"
	"pxml/internal/pathexpr"
	"pxml/internal/query"
	"pxml/internal/sets"
)

// execErr is the cooperative pre-dispatch check: the governor when one
// is attached, the bare context otherwise.
func execErr(ctx context.Context, gov *govern.Governor) error {
	if gov != nil {
		return gov.Err()
	}
	return ctx.Err()
}

// Query is a parsed statement.
type Query struct {
	// Op is the canonical operation name: project, single, descend,
	// select, prob-point, prob-exists, prob-value, prob-object, chain,
	// marginals, worlds, stats.
	Op string
	// Path is set for path-based operations.
	Path pathexpr.Path
	// Cond is set for selections.
	Cond algebra.Condition
	// Object/Value parameterize prob queries.
	Object string
	Value  string
	// Chain holds the object chain for CHAIN.
	Chain []string
	// Top bounds WORLDS output (0 = all).
	Top int
}

// Result is the outcome of executing a query.
type Result struct {
	// Instance is the resulting probabilistic instance for algebra
	// statements (nil otherwise).
	Instance *core.ProbInstance
	// Prob carries a scalar probability when the statement produces one.
	Prob *float64
	// Text is a rendered, human-readable answer.
	Text string
}

// Parse parses one statement.
func Parse(input string) (Query, error) {
	fields := strings.Fields(input)
	if len(fields) == 0 {
		return Query{}, fmt.Errorf("pxql: empty statement")
	}
	kw := strings.ToUpper(fields[0])
	rest := fields[1:]
	switch kw {
	case "PROJECT", "SINGLE", "DESCEND":
		if len(rest) != 1 {
			return Query{}, fmt.Errorf("pxql: %s needs exactly one path expression", kw)
		}
		p, err := pathexpr.Parse(rest[0])
		if err != nil {
			return Query{}, err
		}
		return Query{Op: strings.ToLower(kw), Path: p}, nil
	case "SELECT":
		cond, err := parseCondition(strings.Join(rest, " "))
		if err != nil {
			return Query{}, err
		}
		return Query{Op: "select", Cond: cond}, nil
	case "PROB":
		return parseProb(rest)
	case "CHAIN":
		if len(rest) != 1 {
			return Query{}, fmt.Errorf("pxql: CHAIN needs one dotted object chain")
		}
		chain := strings.Split(rest[0], ".")
		return Query{Op: "chain", Chain: chain}, nil
	case "COUNT":
		if len(rest) != 1 {
			return Query{}, fmt.Errorf("pxql: COUNT needs one path expression")
		}
		p, err := pathexpr.Parse(rest[0])
		if err != nil {
			return Query{}, err
		}
		return Query{Op: "count", Path: p}, nil
	case "MARGINALS":
		return Query{Op: "marginals"}, nil
	case "WORLDS":
		q := Query{Op: "worlds", Top: 10}
		if len(rest) == 1 {
			n, err := strconv.Atoi(rest[0])
			if err != nil || n < 0 {
				return Query{}, fmt.Errorf("pxql: bad WORLDS count %q", rest[0])
			}
			q.Top = n
		} else if len(rest) > 1 {
			return Query{}, fmt.Errorf("pxql: WORLDS takes at most one count")
		}
		return q, nil
	case "ESTIMATE":
		if len(rest) < 2 {
			return Query{}, fmt.Errorf("pxql: ESTIMATE needs a count and a condition")
		}
		n, err := strconv.Atoi(rest[0])
		if err != nil || n <= 0 {
			return Query{}, fmt.Errorf("pxql: bad ESTIMATE count %q", rest[0])
		}
		sub, err := parseProb(rest[1:])
		if err != nil {
			return Query{}, err
		}
		if sub.Op != "prob-exists" && sub.Op != "prob-point" {
			return Query{}, fmt.Errorf("pxql: ESTIMATE supports EXISTS <path> or <path> = <obj>")
		}
		sub.Op = "estimate-" + strings.TrimPrefix(sub.Op, "prob-")
		sub.Top = n
		return sub, nil
	case "TOPK":
		if len(rest) != 1 {
			return Query{}, fmt.Errorf("pxql: TOPK needs a count")
		}
		n, err := strconv.Atoi(rest[0])
		if err != nil || n <= 0 {
			return Query{}, fmt.Errorf("pxql: bad TOPK count %q", rest[0])
		}
		return Query{Op: "topk", Top: n}, nil
	case "STATS":
		return Query{Op: "stats"}, nil
	default:
		return Query{}, fmt.Errorf("pxql: unknown statement %q", fields[0])
	}
}

// parseCondition parses the selection condition grammar, including AND
// conjunctions of object conditions.
func parseCondition(s string) (algebra.Condition, error) {
	parts := splitCaseInsensitive(s, " AND ")
	conds := make([]algebra.Condition, 0, len(parts))
	for _, part := range parts {
		c, err := parseAtomCondition(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		conds = append(conds, c)
	}
	if len(conds) == 1 {
		return conds[0], nil
	}
	return algebra.Conjunction{Conds: conds}, nil
}

func parseAtomCondition(s string) (algebra.Condition, error) {
	upper := strings.ToUpper(s)
	switch {
	case strings.HasPrefix(upper, "VAL("):
		inner, value, err := splitCall(s, "VAL")
		if err != nil {
			return nil, err
		}
		p, err := pathexpr.Parse(inner)
		if err != nil {
			return nil, err
		}
		return algebra.ValueCondition{Path: p, Value: value}, nil
	case strings.HasPrefix(upper, "CARD("):
		// CARD(<path> = <obj>, <label>) IN [a,b]
		open := strings.Index(s, "(")
		close := strings.Index(s, ")")
		if open < 0 || close < open {
			return nil, fmt.Errorf("pxql: malformed CARD condition %q", s)
		}
		args := strings.Split(s[open+1:close], ",")
		if len(args) != 2 {
			return nil, fmt.Errorf("pxql: CARD needs (path = object, label)")
		}
		eq := strings.Split(args[0], "=")
		if len(eq) != 2 {
			return nil, fmt.Errorf("pxql: CARD needs path = object")
		}
		p, err := pathexpr.Parse(strings.TrimSpace(eq[0]))
		if err != nil {
			return nil, err
		}
		obj := strings.TrimSpace(eq[1])
		label := strings.TrimSpace(args[1])
		tail := strings.TrimSpace(s[close+1:])
		tu := strings.ToUpper(tail)
		if !strings.HasPrefix(tu, "IN") {
			return nil, fmt.Errorf("pxql: CARD needs IN [a,b]")
		}
		rng := strings.Trim(strings.TrimSpace(tail[2:]), "[]")
		nums := strings.Split(rng, ",")
		if len(nums) != 2 {
			return nil, fmt.Errorf("pxql: CARD range must be [a,b]")
		}
		lo, err1 := strconv.Atoi(strings.TrimSpace(nums[0]))
		hi, err2 := strconv.Atoi(strings.TrimSpace(nums[1]))
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("pxql: bad CARD range %q", rng)
		}
		return algebra.CardCondition{Path: p, Object: obj, Label: label, Range: sets.Interval{Min: lo, Max: hi}}, nil
	default:
		eq := strings.Split(s, "=")
		if len(eq) != 2 {
			return nil, fmt.Errorf("pxql: condition %q must be path = object", s)
		}
		p, err := pathexpr.Parse(strings.TrimSpace(eq[0]))
		if err != nil {
			return nil, err
		}
		return algebra.ObjectCondition{Path: p, Object: strings.TrimSpace(eq[1])}, nil
	}
}

func parseProb(rest []string) (Query, error) {
	if len(rest) == 0 {
		return Query{}, fmt.Errorf("pxql: PROB needs arguments")
	}
	head := strings.ToUpper(rest[0])
	switch {
	case head == "EXISTS":
		if len(rest) != 2 {
			return Query{}, fmt.Errorf("pxql: PROB EXISTS needs one path")
		}
		p, err := pathexpr.Parse(rest[1])
		if err != nil {
			return Query{}, err
		}
		return Query{Op: "prob-exists", Path: p}, nil
	case head == "OBJECT":
		if len(rest) != 2 {
			return Query{}, fmt.Errorf("pxql: PROB OBJECT needs one object id")
		}
		return Query{Op: "prob-object", Object: rest[1]}, nil
	case strings.HasPrefix(head, "VAL("):
		inner, value, err := splitCall(strings.Join(rest, " "), "VAL")
		if err != nil {
			return Query{}, err
		}
		p, err := pathexpr.Parse(inner)
		if err != nil {
			return Query{}, err
		}
		return Query{Op: "prob-value", Path: p, Value: value}, nil
	default:
		// PROB <path> = <obj>
		joined := strings.Join(rest, " ")
		eq := strings.Split(joined, "=")
		if len(eq) != 2 {
			return Query{}, fmt.Errorf("pxql: PROB needs path = object")
		}
		p, err := pathexpr.Parse(strings.TrimSpace(eq[0]))
		if err != nil {
			return Query{}, err
		}
		return Query{Op: "prob-point", Path: p, Object: strings.TrimSpace(eq[1])}, nil
	}
}

// splitCall parses `KW(<inner>) = <value>` and returns inner and value.
func splitCall(s, kw string) (inner, value string, err error) {
	open := strings.Index(s, "(")
	close := strings.Index(s, ")")
	if open < 0 || close < open {
		return "", "", fmt.Errorf("pxql: malformed %s(...) in %q", kw, s)
	}
	inner = strings.TrimSpace(s[open+1 : close])
	tail := strings.TrimSpace(s[close+1:])
	if !strings.HasPrefix(tail, "=") {
		return "", "", fmt.Errorf("pxql: %s(...) must be followed by = value", kw)
	}
	value = strings.TrimSpace(tail[1:])
	if value == "" {
		return "", "", fmt.Errorf("pxql: missing value after %s(...)", kw)
	}
	return inner, value, nil
}

func splitCaseInsensitive(s, sep string) []string {
	upper := strings.ToUpper(s)
	sepU := strings.ToUpper(sep)
	var parts []string
	start := 0
	for {
		i := strings.Index(upper[start:], sepU)
		if i < 0 {
			parts = append(parts, s[start:])
			return parts
		}
		parts = append(parts, s[start:start+i])
		start += i + len(sep)
	}
}

// Backend supplies the probabilistic primitives Exec relies on, so that a
// caching query engine (internal/engine) can substitute precomputed
// structures — path indexes, compiled Bayesian networks, memoized
// marginals — without duplicating statement dispatch or answer rendering.
// The direct (uncached) backend re-derives everything per call, exactly as
// Exec always did.
type Backend interface {
	// PointProb returns P(o ∈ p), falling back to BN inference on DAGs.
	PointProb(p pathexpr.Path, o model.ObjectID) (float64, error)
	// ExistsProb returns P(∃o. o ∈ p), falling back to BN inference on DAGs.
	ExistsProb(p pathexpr.Path) (float64, error)
	// ValueExistsProb returns P(∃ leaf o ∈ p with val(o) = v) (tree only).
	ValueExistsProb(p pathexpr.Path, v model.Value) (float64, error)
	// ObjectProb returns the existence marginal P(o exists) (DAG-capable).
	ObjectProb(o model.ObjectID) (float64, error)
	// Marginals returns P(o exists) for every object (tree only).
	Marginals() (map[model.ObjectID]float64, error)
	// Estimate Monte-Carlo-estimates P(∃o. o ∈ p) (op "exists") or
	// P(o ∈ p) (op "point") from n forward samples.
	Estimate(op string, p pathexpr.Path, o model.ObjectID, n int) (enumerate.Estimate, error)
}

// directBackend is the uncached Backend: every call re-derives its support
// structures from the instance.
type directBackend struct{ pi *core.ProbInstance }

func (d directBackend) PointProb(p pathexpr.Path, o model.ObjectID) (float64, error) {
	pr, err := query.PointQuery(d.pi, p, o)
	if errors.Is(err, query.ErrNotTree) {
		pr, err = bayes.PathProb(d.pi, p, o)
	}
	return pr, err
}

func (d directBackend) ExistsProb(p pathexpr.Path) (float64, error) {
	pr, err := query.ExistsQuery(d.pi, p)
	if errors.Is(err, query.ErrNotTree) {
		pr, err = bayes.PathProb(d.pi, p, "")
	}
	return pr, err
}

func (d directBackend) ValueExistsProb(p pathexpr.Path, v model.Value) (float64, error) {
	return query.ValueExistsQuery(d.pi, p, v)
}

func (d directBackend) ObjectProb(o model.ObjectID) (float64, error) {
	net, err := bayes.Compile(d.pi)
	if err != nil {
		return 0, err
	}
	return net.ProbExists(o)
}

func (d directBackend) Marginals() (map[model.ObjectID]float64, error) {
	return query.ExistenceMarginals(d.pi)
}

func (d directBackend) Estimate(op string, p pathexpr.Path, o model.ObjectID, n int) (enumerate.Estimate, error) {
	r := rand.New(rand.NewSource(1)) // fixed seed: reproducible estimates
	pred := EstimatePred(op, p, o)
	return enumerate.EstimateProb(d.pi, pred, n, r)
}

// EstimatePred builds the possible-world predicate of an ESTIMATE
// statement: op is "exists" or "point". Shared with backends that sample
// in parallel.
func EstimatePred(op string, p pathexpr.Path, o model.ObjectID) func(*model.Instance) bool {
	return func(s *model.Instance) bool {
		if op == "exists" {
			return len(p.Targets(s.Graph())) > 0
		}
		return p.Matches(s.Graph(), o)
	}
}

// Exec runs a parsed query against an instance. Tree-only fast paths fall
// back to exact DAG routes where one exists (BN inference for point and
// existence queries); otherwise the tree requirement surfaces as an error.
func Exec(pi *core.ProbInstance, q Query) (*Result, error) {
	return ExecWith(pi, q, directBackend{pi})
}

// ExecWith is Exec with the probabilistic primitives supplied by b; the
// algebra, enumeration and stats statements still evaluate against pi
// directly (they produce fresh instances, which caching cannot amortize).
func ExecWith(pi *core.ProbInstance, q Query, b Backend) (*Result, error) {
	return ExecWithCtx(context.Background(), pi, q, b)
}

// ExecWithCtx is ExecWith under a context-carried resource governor
// (govern.From): the enumeration, top-k, and count paths cooperate at
// their loop boundaries, the algebra paths check the budget between
// operator applications and charge each result instance's size, and
// the probabilistic primitives inherit whatever governance the backend
// itself threads (the engine backend passes the same ctx down to the
// ε, BN, and sampling kernels).
func ExecWithCtx(ctx context.Context, pi *core.ProbInstance, q Query, b Backend) (*Result, error) {
	gov := govern.From(ctx)
	if err := execErr(ctx, gov); err != nil {
		return nil, err
	}
	switch q.Op {
	case "project":
		out, err := algebra.AncestorProject(pi, q.Path)
		if err != nil {
			return nil, err
		}
		if err := gov.Step(int64(out.NumObjects())); err != nil {
			return nil, err
		}
		return &Result{Instance: out, Text: fmt.Sprintf("Λ_%s: %d objects", q.Path, out.NumObjects())}, nil
	case "single":
		out, err := algebra.SingleProject(pi, q.Path)
		if err != nil {
			return nil, err
		}
		if err := gov.Step(int64(out.NumObjects())); err != nil {
			return nil, err
		}
		return &Result{Instance: out, Text: fmt.Sprintf("Π_%s: %d objects", q.Path, out.NumObjects())}, nil
	case "descend":
		out, err := algebra.DescendantProject(pi, q.Path)
		if err != nil {
			return nil, err
		}
		if err := gov.Step(int64(out.NumObjects())); err != nil {
			return nil, err
		}
		return &Result{Instance: out, Text: fmt.Sprintf("Δ_%s: %d objects", q.Path, out.NumObjects())}, nil
	case "select":
		out, p, err := algebra.Select(pi, q.Cond)
		if err != nil {
			return nil, err
		}
		if err := gov.Step(int64(out.NumObjects())); err != nil {
			return nil, err
		}
		return &Result{Instance: out, Prob: &p, Text: fmt.Sprintf("σ(%s): P = %.9f", q.Cond, p)}, nil
	case "prob-point":
		p, err := b.PointProb(q.Path, q.Object)
		if err != nil {
			return nil, err
		}
		return &Result{Prob: &p, Text: fmt.Sprintf("P(%s ∈ %s) = %.9f", q.Object, q.Path, p)}, nil
	case "prob-exists":
		p, err := b.ExistsProb(q.Path)
		if err != nil {
			return nil, err
		}
		return &Result{Prob: &p, Text: fmt.Sprintf("P(∃ %s) = %.9f", q.Path, p)}, nil
	case "prob-value":
		p, err := b.ValueExistsProb(q.Path, q.Value)
		if err != nil {
			return nil, err
		}
		return &Result{Prob: &p, Text: fmt.Sprintf("P(val(%s) = %s) = %.9f", q.Path, q.Value, p)}, nil
	case "prob-object":
		p, err := b.ObjectProb(q.Object)
		if err != nil {
			return nil, err
		}
		return &Result{Prob: &p, Text: fmt.Sprintf("P(%s exists) = %.9f", q.Object, p)}, nil
	case "chain":
		p, err := query.ChainProb(pi, q.Chain)
		if err != nil {
			return nil, err
		}
		return &Result{Prob: &p, Text: fmt.Sprintf("P(chain %s) = %.9f", strings.Join(q.Chain, "."), p)}, nil
	case "count":
		d, err := query.CountDistributionCtx(ctx, pi, q.Path)
		if err != nil {
			return nil, err
		}
		e := 0.0
		for k, pr := range d {
			e += float64(k) * pr
		}
		maxK := 0
		for k := range d {
			if k > maxK {
				maxK = k
			}
		}
		var b strings.Builder
		fmt.Fprintf(&b, "E[count(%s)] = %.6f\n", q.Path, e)
		for k := 0; k <= maxK; k++ {
			if d[k] > 0 {
				fmt.Fprintf(&b, "P(count=%d) = %.9f\n", k, d[k])
			}
		}
		return &Result{Prob: &e, Text: strings.TrimRight(b.String(), "\n")}, nil
	case "marginals":
		marg, err := b.Marginals()
		if err != nil {
			return nil, err
		}
		var b strings.Builder
		objs := pi.Objects()
		sort.Strings(objs)
		for _, o := range objs {
			fmt.Fprintf(&b, "%s\t%.9f\n", o, marg[o])
		}
		return &Result{Text: strings.TrimRight(b.String(), "\n")}, nil
	case "worlds":
		gi, err := enumerate.EnumerateCtx(ctx, pi, 0)
		if err != nil {
			return nil, err
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%d worlds, total probability %.9f\n", gi.Len(), gi.TotalMass())
		for i, w := range gi.Worlds() {
			if q.Top > 0 && i == q.Top {
				break
			}
			fmt.Fprintf(&b, "p=%.9f objects=%v\n", w.P, w.S.Objects())
		}
		return &Result{Text: strings.TrimRight(b.String(), "\n")}, nil
	case "estimate-exists", "estimate-point":
		est, err := b.Estimate(strings.TrimPrefix(q.Op, "estimate-"), q.Path, q.Object, q.Top)
		if err != nil {
			return nil, err
		}
		p := est.P
		return &Result{Prob: &p, Text: fmt.Sprintf("P ≈ %s", est)}, nil
	case "topk":
		worlds, err := enumerate.TopKCtx(ctx, pi, q.Top, 0)
		if err != nil {
			return nil, err
		}
		var b strings.Builder
		for _, w := range worlds {
			fmt.Fprintf(&b, "p=%.9f objects=%v\n", w.P, w.S.Objects())
		}
		return &Result{Text: strings.TrimRight(b.String(), "\n")}, nil
	case "stats":
		st := pi.ComputeStats()
		return &Result{Text: fmt.Sprintf(
			"root=%s objects=%d edges=%d leaves=%d depth=%d opf-entries=%d vpf-entries=%d tree=%v",
			pi.Root(), st.Objects, st.Edges, st.Leaves, st.Depth, st.OPFEntries, st.VPFEntries, pi.IsTree())}, nil
	default:
		return nil, fmt.Errorf("pxql: unknown operation %q", q.Op)
	}
}

// Eval parses and executes a statement in one step.
func Eval(pi *core.ProbInstance, statement string) (*Result, error) {
	q, err := Parse(statement)
	if err != nil {
		return nil, err
	}
	return Exec(pi, q)
}

package pxql

import (
	"math"
	"strings"
	"testing"

	"pxml/internal/core"
	"pxml/internal/fixtures"
	"pxml/internal/model"
	"pxml/internal/prob"
	"pxml/internal/sets"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// bib builds a tree bibliography through core (same shape as the algebra
// tests' treeBib).
func bib(t testing.TB) *core.ProbInstance {
	t.Helper()
	pi := core.NewProbInstance("R")
	if err := pi.RegisterType(model.NewType("title-type", "VQDB", "Lore")); err != nil {
		t.Fatal(err)
	}
	pi.SetLCh("R", "book", "B1", "B2")
	w := prob.NewOPF()
	w.Put(sets.NewSet("B1"), 0.3)
	w.Put(sets.NewSet("B2"), 0.2)
	w.Put(sets.NewSet("B1", "B2"), 0.5)
	pi.SetOPF("R", w)
	pi.SetLCh("B1", "author", "A1")
	pi.SetLCh("B1", "title", "T1")
	w1 := prob.NewOPF()
	w1.Put(sets.NewSet(), 0.1)
	w1.Put(sets.NewSet("A1"), 0.3)
	w1.Put(sets.NewSet("T1"), 0.2)
	w1.Put(sets.NewSet("A1", "T1"), 0.4)
	pi.SetOPF("B1", w1)
	pi.SetLCh("B2", "author", "A2")
	w2 := prob.NewOPF()
	w2.Put(sets.NewSet("A2"), 1)
	pi.SetOPF("B2", w2)
	if err := pi.SetLeafType("T1", "title-type"); err != nil {
		t.Fatal(err)
	}
	v := prob.NewVPF()
	v.Put("VQDB", 0.6)
	v.Put("Lore", 0.4)
	pi.SetVPF("T1", v)
	if err := pi.Validate(); err != nil {
		t.Fatal(err)
	}
	return pi
}

func wantProb(t *testing.T, pi *core.ProbInstance, stmt string, want float64) {
	t.Helper()
	res, err := Eval(pi, stmt)
	if err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
	if res.Prob == nil {
		t.Fatalf("%s: no probability", stmt)
	}
	if !approx(*res.Prob, want) {
		t.Errorf("%s = %v, want %v", stmt, *res.Prob, want)
	}
}

func TestEvalProbQueries(t *testing.T) {
	pi := bib(t)
	wantProb(t, pi, "PROB R.book = B1", 0.8)
	wantProb(t, pi, "PROB R.book.author = A1", 0.8*0.7)
	wantProb(t, pi, "PROB VAL(R.book.title) = Lore", 0.8*0.6*0.4)
	wantProb(t, pi, "PROB OBJECT A2", 0.7)
	wantProb(t, pi, "CHAIN R.B1.A1", 0.8*0.7)
}

func TestEvalProbExistsExact(t *testing.T) {
	// Cross-check PROB EXISTS against enumeration rather than a hand
	// formula (authors under different books are not independent at the
	// root).
	pi := bib(t)
	res, err := Eval(pi, "PROB EXISTS R.book.author")
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Eval(pi, "WORLDS 0")
	if err != nil {
		t.Fatal(err)
	}
	_ = res2
	// Manual: fail = Σ_c ω(R)(c) Π (1-ε): ε_B1 = 0.7, ε_B2 = 1.
	want := 1 - (0.3*0.3 + 0.2*0 + 0.5*0.3*0)
	if !approx(*res.Prob, want) {
		t.Errorf("exists = %v, want %v", *res.Prob, want)
	}
}

func TestEvalSelect(t *testing.T) {
	pi := bib(t)
	res, err := Eval(pi, "SELECT R.book = B1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Instance == nil || res.Prob == nil || !approx(*res.Prob, 0.8) {
		t.Fatalf("select result = %+v", res)
	}
	if got := res.Instance.OPF("R").ProbContains("B1"); !approx(got, 1) {
		t.Errorf("conditioned marginal = %v", got)
	}

	// Conjunction.
	res, err = Eval(pi, "SELECT R.book = B1 AND R.book = B2")
	if err != nil {
		t.Fatal(err)
	}
	if !approx(*res.Prob, 0.5) {
		t.Errorf("conjunction prob = %v", *res.Prob)
	}

	// Value selection.
	res, err = Eval(pi, "SELECT VAL(R.book.title) = Lore")
	if err != nil {
		t.Fatal(err)
	}
	if !approx(*res.Prob, 0.8*0.6*0.4) {
		t.Errorf("value selection prob = %v", *res.Prob)
	}

	// Cardinality selection.
	res, err = Eval(pi, "SELECT CARD(R.book = B1, author) IN [1,1]")
	if err != nil {
		t.Fatal(err)
	}
	if !approx(*res.Prob, 0.8*0.7) {
		t.Errorf("card selection prob = %v", *res.Prob)
	}
}

func TestEvalProjections(t *testing.T) {
	pi := bib(t)
	res, err := Eval(pi, "PROJECT R.book.author")
	if err != nil {
		t.Fatal(err)
	}
	if res.Instance == nil || res.Instance.HasObject("T1") {
		t.Fatalf("projection kept T1: %+v", res.Instance.Objects())
	}
	res, err = Eval(pi, "SINGLE R.book.author")
	if err != nil {
		t.Fatal(err)
	}
	if res.Instance.HasObject("B1") {
		t.Error("single projection kept B1")
	}
	res, err = Eval(pi, "DESCEND R.book")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Instance.HasObject("A1") {
		t.Error("descendant projection lost A1")
	}
}

func TestEvalTextOutputs(t *testing.T) {
	pi := bib(t)
	res, err := Eval(pi, "STATS")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "objects=6") || !strings.Contains(res.Text, "tree=true") {
		t.Errorf("stats = %q", res.Text)
	}
	res, err = Eval(pi, "MARGINALS")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "R\t1.000000000") {
		t.Errorf("marginals = %q", res.Text)
	}
	res, err = Eval(pi, "WORLDS 2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "total probability 1.000000000") {
		t.Errorf("worlds = %q", res.Text)
	}
	if got := strings.Count(res.Text, "p="); got != 2 {
		t.Errorf("worlds lines = %d", got)
	}
}

func TestEvalDAGFallback(t *testing.T) {
	pi := fixtures.Figure2()
	res, err := Eval(pi, "PROB R.book.author = A1")
	if err != nil {
		t.Fatal(err)
	}
	if !approx(*res.Prob, 0.88) { // cross-checked in bayes tests
		t.Errorf("DAG point query = %v", *res.Prob)
	}
	res, err = Eval(pi, "PROB OBJECT A2")
	if err != nil {
		t.Fatal(err)
	}
	if !approx(*res.Prob, 0.634) {
		t.Errorf("DAG existence = %v", *res.Prob)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"FROB x",
		"PROJECT",
		"PROJECT a b",
		"SELECT",
		"SELECT nonsense",
		"SELECT VAL(R.book = x",
		"SELECT CARD(R.book, author) IN [1,2]",
		"SELECT CARD(R.book = B1, author) IN [a,b]",
		"SELECT CARD(R.book = B1, author) [1,2]",
		"PROB",
		"PROB EXISTS",
		"PROB OBJECT",
		"PROB R.book",
		"PROB VAL(R.x)",
		"WORLDS x",
		"WORLDS 1 2",
		"CHAIN",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestParseCaseInsensitive(t *testing.T) {
	q, err := Parse("select val(R.book.title) = Lore")
	if err != nil {
		t.Fatal(err)
	}
	if q.Op != "select" {
		t.Errorf("op = %q", q.Op)
	}
	q, err = Parse("prob exists R.book")
	if err != nil {
		t.Fatal(err)
	}
	if q.Op != "prob-exists" {
		t.Errorf("op = %q", q.Op)
	}
}

func TestEvalSelectZeroProb(t *testing.T) {
	pi := bib(t)
	if _, err := Eval(pi, "SELECT R.book = NOPE"); err == nil {
		t.Error("impossible selection accepted")
	}
}

func TestEvalTopK(t *testing.T) {
	pi := bib(t)
	res, err := Eval(pi, "TOPK 3")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(res.Text, "p="); got != 3 {
		t.Errorf("topk lines = %d: %q", got, res.Text)
	}
	// The best world of TOPK matches the head of WORLDS.
	w, err := Eval(pi, "WORLDS 1")
	if err != nil {
		t.Fatal(err)
	}
	topFirst := strings.SplitN(res.Text, "\n", 2)[0]
	if !strings.Contains(w.Text, topFirst) {
		t.Errorf("TOPK head %q not the WORLDS head:\n%s", topFirst, w.Text)
	}
	for _, bad := range []string{"TOPK", "TOPK x", "TOPK 0"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestEvalEstimate(t *testing.T) {
	pi := bib(t)
	res, err := Eval(pi, "ESTIMATE 4000 R.book = B1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Prob == nil || *res.Prob < 0.75 || *res.Prob > 0.85 { // exact 0.8
		t.Errorf("estimate = %v", res.Prob)
	}
	if !strings.Contains(res.Text, "±") {
		t.Errorf("estimate text = %q", res.Text)
	}
	res, err = Eval(pi, "ESTIMATE 4000 EXISTS R.book.author")
	if err != nil {
		t.Fatal(err)
	}
	if res.Prob == nil || *res.Prob < 0.86 || *res.Prob > 0.96 { // exact 0.91
		t.Errorf("exists estimate = %v", res.Prob)
	}
	for _, bad := range []string{"ESTIMATE", "ESTIMATE x R.a = b", "ESTIMATE 10 VAL(R.a) = b", "ESTIMATE 0 EXISTS R.a"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestEvalCount(t *testing.T) {
	pi := bib(t)
	res, err := Eval(pi, "COUNT R.book.author")
	if err != nil {
		t.Fatal(err)
	}
	if res.Prob == nil {
		t.Fatal("no expectation")
	}
	// E = P(A1) + P(A2) = 0.8·0.7 + 0.7.
	if !approx(*res.Prob, 0.8*0.7+0.7) {
		t.Errorf("E[count] = %v", *res.Prob)
	}
	if !strings.Contains(res.Text, "P(count=2)") {
		t.Errorf("count text = %q", res.Text)
	}
	if _, err := Parse("COUNT"); err == nil {
		t.Error("COUNT without path accepted")
	}
}

// Package rescache is a sharded, size-bounded LRU result cache with
// singleflight collapse, built for memoizing query results keyed by
// (instance version, query fingerprint). Concurrent lookups of the same
// missing key share one computation: the first caller becomes the leader
// and runs the compute function, later callers block until the leader
// finishes and receive the same value (or error). Errors are never
// cached — the next caller retries.
//
// The cache never returns a stale entry for a key it was given; staleness
// is the caller's concern and is handled by versioned keys: embed a
// monotonically increasing instance version in the key and bump it on
// every mutation, so entries for the old version become unreachable and
// age out of the LRU naturally.
//
// The hit path is lock-free: each shard publishes an immutable entry map
// behind an atomic pointer, so a lookup is one pointer load, one map
// index, and one atomic timestamp touch. Mutations (inserts after a
// computed miss, removals, purges) build a copy-on-write successor map
// under the shard mutex and publish it atomically — the cost lands on
// the miss path, next to the compute it just paid for. Recency is
// tracked by a global monotone tick each hit stamps into the entry;
// eviction removes the smallest-tick entries until the shard is back
// under budget. Under serial access this reproduces exact LRU order;
// under concurrency it is approximate (ticks race by at most the number
// of in-flight readers), which is indistinguishable for a result cache.
//
// A key is hashed (FNV-1a) to one of a power-of-two number of shards,
// each with its own budget. All methods are safe for concurrent use.
package rescache

import (
	"context"
	"sync"
	"sync/atomic"
)

// DefaultShards is the shard count used by New. Must be a power of two.
const DefaultShards = 16

// entryOverhead is the bookkeeping cost charged to every entry on top of
// the caller-supplied cost, so a flood of tiny entries cannot blow the
// budget through map/list overhead alone.
const entryOverhead = 96

// Cache is a sharded LRU byte-budgeted cache with singleflight collapse.
type Cache struct {
	shards []shard
	mask   uint32

	// clock is the recency tick: every hit and insert stamps the next
	// value into the touched entry.
	clock atomic.Int64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	collapsed atomic.Int64 // lookups served by joining an in-flight compute
}

type shard struct {
	// items is the published immutable entry map; readers load it
	// without taking mu. mu guards everything else and all publishes.
	items   atomic.Pointer[map[string]*entry]
	mu      sync.Mutex
	budget  int64
	bytes   int64
	flights map[string]*flight
}

type entry struct {
	key  string
	val  any
	cost int64
	used atomic.Int64 // last-touch tick from Cache.clock
}

// flight is one in-progress compute that concurrent callers share.
// done is closed by the leader after val/err are set; waiters select on
// it against their own context so an abandoned caller unblocks promptly
// while the leader keeps computing (and still populates the cache).
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// New returns a cache bounded to roughly maxBytes across DefaultShards
// shards. maxBytes < 1 yields a cache that stores nothing but still
// collapses concurrent identical computes.
func New(maxBytes int64) *Cache {
	return NewSharded(maxBytes, DefaultShards)
}

// NewSharded is New with an explicit shard count, rounded up to the next
// power of two (minimum 1). The byte budget is split evenly per shard.
func NewSharded(maxBytes int64, shards int) *Cache {
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &Cache{shards: make([]shard, n), mask: uint32(n - 1)}
	per := maxBytes / int64(n)
	for i := range c.shards {
		s := &c.shards[i]
		s.budget = per
		empty := make(map[string]*entry)
		s.items.Store(&empty)
		s.flights = make(map[string]*flight)
	}
	return c
}

// fnv32a hashes the key for shard selection.
func fnv32a(s string) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime
	}
	return h
}

func (c *Cache) shard(key string) *shard {
	return &c.shards[fnv32a(key)&c.mask]
}

// Get returns the cached value for key, if present, marking it
// most-recently-used. Lock-free: one atomic map load plus an atomic
// recency stamp.
func (c *Cache) Get(key string) (any, bool) {
	s := c.shard(key)
	e, ok := (*s.items.Load())[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	e.used.Store(c.clock.Add(1))
	c.hits.Add(1)
	return e.val, true
}

// Put inserts (or replaces) key with the given value and cost. A cost
// exceeding the shard budget is accepted and immediately evicted along
// with everything else, so callers should skip storing oversized values
// themselves when they can tell.
func (c *Cache) Put(key string, v any, cost int64) {
	s := c.shard(key)
	s.mu.Lock()
	s.insertLocked(c, key, v, cost)
	s.mu.Unlock()
}

// Do returns the cached value for key, or computes it exactly once across
// concurrent callers. compute returns (value, cost, err): on err the value
// is handed to every waiting caller but never cached; on success the value
// is cached unless cost is negative (the caller's "do not cache" signal —
// still shared with concurrent waiters). A hit acquires no locks.
func (c *Cache) Do(key string, compute func() (v any, cost int64, err error)) (any, error) {
	return c.DoCtx(context.Background(), key, compute)
}

// DoCtx is Do with caller cancellation: a waiter whose ctx is done
// returns ctx.Err() promptly instead of blocking on the flight leader.
// The leader itself is NOT cancelled by a waiter's ctx — it runs compute
// to completion and still populates the cache, so one abandoned client
// cannot poison the result for the callers that stayed. (A leader whose
// own compute observes its ctx — as the engine's governed computes do —
// fails with an error, which is never cached.)
func (c *Cache) DoCtx(ctx context.Context, key string, compute func() (v any, cost int64, err error)) (any, error) {
	s := c.shard(key)
	if e, ok := (*s.items.Load())[key]; ok {
		e.used.Store(c.clock.Add(1))
		c.hits.Add(1)
		return e.val, nil
	}
	s.mu.Lock()
	// Re-check under the mutex: the entry may have been published
	// between the lock-free miss and acquiring mu.
	if e, ok := (*s.items.Load())[key]; ok {
		s.mu.Unlock()
		e.used.Store(c.clock.Add(1))
		c.hits.Add(1)
		return e.val, nil
	}
	if f, ok := s.flights[key]; ok {
		s.mu.Unlock()
		select {
		case <-f.done:
			c.collapsed.Add(1)
			c.hits.Add(1)
			return f.val, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()
	c.misses.Add(1)

	v, cost, err := compute()
	f.val, f.err = v, err

	s.mu.Lock()
	delete(s.flights, key)
	if err == nil && cost >= 0 {
		s.insertLocked(c, key, v, cost)
	}
	s.mu.Unlock()
	close(f.done)
	return v, err
}

// insertLocked publishes a successor map with the entry added or
// replaced, evicting least-recently-used entries until the shard is back
// under budget. Caller holds s.mu.
func (s *shard) insertLocked(c *Cache, key string, v any, cost int64) {
	if cost < 0 {
		cost = 0
	}
	cost += entryOverhead
	cur := *s.items.Load()
	m := make(map[string]*entry, len(cur)+1)
	for k, e := range cur {
		m[k] = e
	}
	if old, ok := m[key]; ok {
		s.bytes -= old.cost
	}
	e := &entry{key: key, val: v, cost: cost}
	e.used.Store(c.clock.Add(1))
	m[key] = e
	s.bytes += cost
	for s.bytes > s.budget && len(m) > 0 {
		var victim *entry
		for _, cand := range m {
			if victim == nil || cand.used.Load() < victim.used.Load() {
				victim = cand
			}
		}
		delete(m, victim.key)
		s.bytes -= victim.cost
		c.evictions.Add(1)
	}
	s.items.Store(&m)
}

// Remove drops key from the cache, reporting whether it was present.
// In-flight computes for the key are unaffected.
func (c *Cache) Remove(key string) bool {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := *s.items.Load()
	e, ok := cur[key]
	if !ok {
		return false
	}
	m := make(map[string]*entry, len(cur))
	for k, v := range cur {
		if k != key {
			m[k] = v
		}
	}
	s.bytes -= e.cost
	s.items.Store(&m)
	return true
}

// Purge drops every cached entry (in-flight computes are unaffected).
func (c *Cache) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		empty := make(map[string]*entry)
		s.items.Store(&empty)
		s.bytes = 0
		s.mu.Unlock()
	}
}

// Len returns the number of cached entries. Lock-free.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		n += len(*c.shards[i].items.Load())
	}
	return n
}

// Bytes returns the total charged cost of cached entries (including the
// per-entry overhead).
func (c *Cache) Bytes() int64 {
	var n int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.bytes
		s.mu.Unlock()
	}
	return n
}

// Stats is a point-in-time, JSON-encodable counter snapshot.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Collapsed int64 `json:"collapsed"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
}

// Stats returns the cache's cumulative counters and current occupancy.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Collapsed: c.collapsed.Load(),
		Entries:   c.Len(),
		Bytes:     c.Bytes(),
	}
}

package rescache

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestDoCtxWaiterCancelled: a waiter joining an in-flight compute whose
// ctx dies must return promptly with ctx.Err(); the leader completes and
// still populates the cache for subsequent callers.
func TestDoCtxWaiterCancelled(t *testing.T) {
	c := New(1 << 20)
	leaderIn := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err := c.Do("k", func() (any, int64, error) {
			close(leaderIn)
			<-release
			return "computed", 8, nil
		})
		if err != nil || v != "computed" {
			t.Errorf("leader: v=%v err=%v", v, err)
		}
	}()
	<-leaderIn

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := c.DoCtx(ctx, "k", func() (any, int64, error) {
			t.Error("waiter must not compute")
			return nil, 0, nil
		})
		waiterDone <- err
	}()
	// Give the waiter time to join the flight, then abandon it.
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter error = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled waiter still blocked on the flight leader")
	}

	// The leader is unaffected: it finishes and caches the value.
	close(release)
	wg.Wait()
	if v, ok := c.Get("k"); !ok || v != "computed" {
		t.Fatalf("leader result not cached after waiter cancellation: %v %v", v, ok)
	}
}

// TestDoCtxWaiterCompletesNormally: a live waiter still collapses onto
// the leader's result exactly as Do always did.
func TestDoCtxWaiterCompletesNormally(t *testing.T) {
	c := New(1 << 20)
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _ = c.Do("k", func() (any, int64, error) {
			close(leaderIn)
			<-release
			return 42, 8, nil
		})
	}()
	<-leaderIn
	waiterDone := make(chan any, 1)
	go func() {
		v, err := c.DoCtx(context.Background(), "k", func() (any, int64, error) {
			t.Error("waiter must not compute")
			return nil, 0, nil
		})
		if err != nil {
			t.Errorf("waiter err: %v", err)
		}
		waiterDone <- v
	}()
	time.Sleep(20 * time.Millisecond)
	close(release)
	select {
	case v := <-waiterDone:
		if v != 42 {
			t.Fatalf("waiter got %v, want 42", v)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never unblocked")
	}
	st := c.Stats()
	if st.Collapsed != 1 {
		t.Fatalf("collapsed = %d, want 1", st.Collapsed)
	}
}

package rescache

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New(1 << 20)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1, 10)
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v; want 1, true", v, ok)
	}
	c.Put("a", 2, 10)
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatalf("replace: got %v, want 2", v)
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}

func TestLRUEviction(t *testing.T) {
	// One shard so the LRU order is global and deterministic.
	c := NewSharded(3*(100+entryOverhead), 1)
	c.Put("a", "a", 100)
	c.Put("b", "b", 100)
	c.Put("c", "c", 100)
	c.Get("a") // promote a; b is now LRU
	c.Put("d", "d", 100)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should have survived", k)
		}
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestByteBudget(t *testing.T) {
	c := NewSharded(10*(64+entryOverhead), 1)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, 64)
	}
	if n := c.Len(); n != 10 {
		t.Fatalf("Len = %d, want 10", n)
	}
	if b, max := c.Bytes(), int64(10*(64+entryOverhead)); b > max {
		t.Fatalf("Bytes = %d, over budget %d", b, max)
	}
	// Oversized entry: accepted then evicted, never violating the budget.
	c.Put("huge", "x", 1<<30)
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversized entry should not be retained")
	}
}

func TestDoCachesSuccess(t *testing.T) {
	c := New(1 << 20)
	calls := 0
	compute := func() (any, int64, error) { calls++; return 42, 8, nil }
	for i := 0; i < 3; i++ {
		v, err := c.Do("k", compute)
		if err != nil || v.(int) != 42 {
			t.Fatalf("Do = %v, %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", st.Hits, st.Misses)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New(1 << 20)
	boom := errors.New("boom")
	calls := 0
	if _, err := c.Do("k", func() (any, int64, error) { calls++; return nil, 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if v, err := c.Do("k", func() (any, int64, error) { calls++; return 7, 8, nil }); err != nil || v.(int) != 7 {
		t.Fatalf("retry = %v, %v", v, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2", calls)
	}
}

func TestDoNegativeCostNotCached(t *testing.T) {
	c := New(1 << 20)
	calls := 0
	compute := func() (any, int64, error) { calls++; return "big", -1, nil }
	for i := 0; i < 2; i++ {
		if v, err := c.Do("k", compute); err != nil || v.(string) != "big" {
			t.Fatalf("Do = %v, %v", v, err)
		}
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (negative cost must not cache)", calls)
	}
}

func TestSingleflightCollapse(t *testing.T) {
	c := New(1 << 20)
	const waiters = 16
	var calls atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	vals := make([]any, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.Do("k", func() (any, int64, error) {
				calls.Add(1)
				<-gate // hold the flight open so everyone piles on
				return "shared", 8, nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			vals[i] = v
		}(i)
	}
	// Let the goroutines reach the flight, then release the leader.
	for c.Stats().Misses == 0 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times under concurrency, want 1", n)
	}
	for i, v := range vals {
		if v.(string) != "shared" {
			t.Fatalf("waiter %d got %v", i, v)
		}
	}
}

func TestRemoveAndPurge(t *testing.T) {
	c := New(1 << 20)
	c.Put("a", 1, 8)
	c.Put("b", 2, 8)
	if !c.Remove("a") || c.Remove("a") {
		t.Fatal("Remove should report presence exactly once")
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("a still present after Remove")
	}
	c.Purge()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("after Purge: Len=%d Bytes=%d", c.Len(), c.Bytes())
	}
}

func TestConcurrentMixed(t *testing.T) {
	c := NewSharded(64<<10, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%64)
				switch i % 3 {
				case 0:
					c.Put(k, i, int64(i%256))
				case 1:
					c.Get(k)
				default:
					c.Do(k, func() (any, int64, error) { return i, 32, nil })
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() == 0 {
		t.Fatal("expected surviving entries")
	}
}

// Package prob implements the local probability models of the PXML paper:
// object probability functions (OPFs, Definition 3.8) mapping an object's
// potential child sets to probabilities, and value probability functions
// (VPFs, Definition 3.9) mapping a leaf's domain values to probabilities.
// It also provides the compact independent-children OPF representation that
// Section 3.2 sketches and Section 8 identifies as the ProTDB special case.
package prob

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"

	"pxml/internal/sets"
)

// Tolerance is the absolute slack allowed when checking that a distribution
// sums to one. Probabilities are combined multiplicatively across object
// chains, so a tight tolerance keeps the global semantics coherent.
const Tolerance = 1e-9

// OPF is an object probability function ω : PC(o) → [0,1] with
// Σ_c ω(c) = 1 (Definition 3.8). Entries with probability zero may be
// stored explicitly; Prob returns 0 for absent sets.
type OPF struct {
	entries map[string]OPFEntry
	// sorted caches the canonical-order entry slice behind Each/Entries.
	// Built lazily on first iteration and dropped on mutation, it makes
	// every OPF traversal deterministic — floating-point sums come out
	// bit-identical across runs, which result caching relies on — and
	// replaces map iteration with a slice walk on the query hot paths.
	// Concurrent builders may race benignly: both compute the same slice.
	sorted atomic.Pointer[[]OPFEntry]
}

// NewOPF returns an empty OPF.
func NewOPF() *OPF {
	return &OPF{entries: make(map[string]OPFEntry)}
}

// NewOPFSized returns an empty OPF with capacity for n entries, for
// loaders that know the entry count upfront.
func NewOPFSized(n int) *OPF {
	return &OPF{entries: make(map[string]OPFEntry, n)}
}

// OPFEntry is one (child set, probability) pair of an OPF.
type OPFEntry struct {
	Set  sets.Set
	Prob float64
}

// Put assigns probability p to the child set c, replacing any previous
// assignment for the same set.
func (w *OPF) Put(c sets.Set, p float64) {
	w.entries[c.Key()] = OPFEntry{Set: c, Prob: p}
	w.sorted.Store(nil)
}

// Add accumulates probability p onto the child set c.
func (w *OPF) Add(c sets.Set, p float64) {
	k := c.Key()
	e, ok := w.entries[k]
	if !ok {
		e.Set = c
	}
	e.Prob += p
	w.entries[k] = e
	w.sorted.Store(nil)
}

// Prob returns ω(c), zero when c has no entry.
func (w *OPF) Prob(c sets.Set) float64 { return w.entries[c.Key()].Prob }

// Len returns the number of stored entries.
func (w *OPF) Len() int { return len(w.entries) }

// sortedEntries returns the cached canonical-order slice, building it on
// first use. Callers must not mutate the result.
func (w *OPF) sortedEntries() []OPFEntry {
	if p := w.sorted.Load(); p != nil {
		return *p
	}
	es := make([]OPFEntry, 0, len(w.entries))
	for _, e := range w.entries {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool { return lessEntry(es[i].Set, es[j].Set) })
	w.sorted.Store(&es)
	return es
}

// Entries returns all stored entries in canonical order (set size, then
// lexicographic). The returned slice is the caller's to keep.
func (w *OPF) Entries() []OPFEntry {
	es := w.sortedEntries()
	out := make([]OPFEntry, len(es))
	copy(out, es)
	return out
}

// Each calls fn for every stored entry in canonical order; it avoids the
// allocation of Entries on hot paths, and its deterministic order keeps
// floating-point accumulations reproducible run to run.
func (w *OPF) Each(fn func(c sets.Set, p float64)) {
	for _, e := range w.sortedEntries() {
		fn(e.Set, e.Prob)
	}
}

// Mass returns the total stored probability Σ_c ω(c).
func (w *OPF) Mass() float64 {
	total := 0.0
	for _, e := range w.entries {
		total += e.Prob
	}
	return total
}

// Validate reports an error unless every probability lies in [0,1] and the
// total mass is 1 within Tolerance.
func (w *OPF) Validate() error {
	total := 0.0
	for _, e := range w.entries {
		if e.Prob < -Tolerance || e.Prob > 1+Tolerance || math.IsNaN(e.Prob) {
			return fmt.Errorf("prob: OPF entry %s has probability %v outside [0,1]", e.Set, e.Prob)
		}
		total += e.Prob
	}
	if math.Abs(total-1) > Tolerance {
		return fmt.Errorf("prob: OPF mass %v != 1", total)
	}
	return nil
}

// Normalize rescales all entries so the mass is 1. It returns an error when
// the mass is zero (no distribution can be recovered), the situation
// Section 6.1 treats as an empty projection result.
func (w *OPF) Normalize() error {
	total := w.Mass()
	if total <= 0 {
		return fmt.Errorf("prob: cannot normalize OPF with mass %v", total)
	}
	for k, e := range w.entries {
		e.Prob /= total
		w.entries[k] = e
	}
	w.sorted.Store(nil)
	return nil
}

// Clone returns a deep copy of the OPF. Child sets are shared (they are
// immutable by convention).
func (w *OPF) Clone() *OPF {
	c := &OPF{entries: make(map[string]OPFEntry, len(w.entries))}
	for k, e := range w.entries {
		c.entries[k] = e
	}
	return c
}

// ProbContains returns P(member ∈ c) = Σ_{c ∋ member} ω(c), the building
// block of the chain-probability formula in Section 6.2.
func (w *OPF) ProbContains(member string) float64 {
	total := 0.0
	for _, e := range w.sortedEntries() {
		if e.Set.Contains(member) {
			total += e.Prob
		}
	}
	return total
}

// ConditionContains returns the OPF conditioned on the event that the given
// object is among the chosen children, together with the probability of
// that event. This is the per-ancestor update of the efficient selection
// algorithm: ω'(c) = ω(c)·1[member ∈ c] / P(member ∈ c). The second result
// is false when the event has probability zero.
func (w *OPF) ConditionContains(member string) (*OPF, float64, bool) {
	return w.Condition(func(c sets.Set) bool { return c.Contains(member) })
}

// Condition returns the OPF conditioned on an arbitrary predicate over
// child sets, with the probability of the predicate. The second result is
// false when the event has probability zero.
func (w *OPF) Condition(pred func(sets.Set) bool) (*OPF, float64, bool) {
	out := NewOPF()
	norm := 0.0
	for k, e := range w.entries {
		if pred(e.Set) {
			out.entries[k] = e
			norm += e.Prob
		}
	}
	if norm <= 0 {
		return nil, 0, false
	}
	for k, e := range out.entries {
		e.Prob /= norm
		out.entries[k] = e
	}
	return out, norm, true
}

// MarginalizeDrop removes the given objects from every child set, summing
// the probabilities of sets that become identical. This is the
// marginalization step of the Section 6.1 projection update:
// ω'(c') = Σ_{d ⊆ dropped, c'∪d ∈ PC(o)} ω(c'∪d).
func (w *OPF) MarginalizeDrop(dropped sets.Set) *OPF {
	out := NewOPF()
	for _, e := range w.entries {
		out.Add(e.Set.Minus(dropped), e.Prob)
	}
	return out
}

// Product returns the OPF over unions c ∪ c' for c from w and c' from v,
// with probability ω(c)·ω'(c'). This is exactly the root OPF of the
// Cartesian product operation (Definition 5.7); identical unions are
// merged by summation. The operand OPFs must range over disjoint object
// universes for the result to be a sensible distribution, which the
// Cartesian product guarantees by renaming.
func (w *OPF) Product(v *OPF) *OPF {
	out := NewOPF()
	for _, e1 := range w.entries {
		for _, e2 := range v.entries {
			out.Add(e1.Set.Union(e2.Set), e1.Prob*e2.Prob)
		}
	}
	return out
}

// Support returns the child sets with strictly positive probability, in
// canonical order.
func (w *OPF) Support() []sets.Set {
	var ss []sets.Set
	for _, e := range w.entries {
		if e.Prob > 0 {
			ss = append(ss, e.Set)
		}
	}
	sort.Slice(ss, func(i, j int) bool { return lessEntry(ss[i], ss[j]) })
	return ss
}

// String renders the OPF as a probability table for debugging.
func (w *OPF) String() string {
	var b strings.Builder
	for _, e := range w.Entries() {
		fmt.Fprintf(&b, "%s=%.6g ", e.Set, e.Prob)
	}
	return strings.TrimSpace(b.String())
}

func lessEntry(a, b sets.Set) bool {
	if a.Len() != b.Len() {
		return a.Len() < b.Len()
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// VPF is a value probability function ω : dom(τ(o)) → [0,1] with
// Σ_v ω(v) = 1 (Definition 3.9).
type VPF struct {
	probs map[string]float64
}

// NewVPF returns an empty VPF.
func NewVPF() *VPF { return &VPF{probs: make(map[string]float64)} }

// NewVPFSized returns an empty VPF with capacity for n entries.
func NewVPFSized(n int) *VPF { return &VPF{probs: make(map[string]float64, n)} }

// VPFEntry is one (value, probability) pair of a VPF.
type VPFEntry struct {
	Value string
	Prob  float64
}

// Put assigns probability p to value v.
func (w *VPF) Put(v string, p float64) { w.probs[v] = p }

// Prob returns ω(v), zero when v has no entry.
func (w *VPF) Prob(v string) float64 { return w.probs[v] }

// Len returns the number of stored entries.
func (w *VPF) Len() int { return len(w.probs) }

// Entries returns all entries sorted by value.
func (w *VPF) Entries() []VPFEntry {
	es := make([]VPFEntry, 0, len(w.probs))
	for v, p := range w.probs {
		es = append(es, VPFEntry{Value: v, Prob: p})
	}
	sort.Slice(es, func(i, j int) bool { return es[i].Value < es[j].Value })
	return es
}

// Mass returns the total stored probability.
func (w *VPF) Mass() float64 {
	total := 0.0
	for _, p := range w.probs {
		total += p
	}
	return total
}

// Validate reports an error unless every probability lies in [0,1] and the
// total mass is 1 within Tolerance.
func (w *VPF) Validate() error {
	total := 0.0
	for v, p := range w.probs {
		if p < -Tolerance || p > 1+Tolerance || math.IsNaN(p) {
			return fmt.Errorf("prob: VPF value %q has probability %v outside [0,1]", v, p)
		}
		total += p
	}
	if math.Abs(total-1) > Tolerance {
		return fmt.Errorf("prob: VPF mass %v != 1", total)
	}
	return nil
}

// Clone returns a deep copy.
func (w *VPF) Clone() *VPF {
	c := NewVPF()
	for v, p := range w.probs {
		c.probs[v] = p
	}
	return c
}

// PointMass returns a VPF that assigns probability one to v, the result of
// conditioning a leaf on a value selection val(p) = v.
func PointMass(v string) *VPF {
	w := NewVPF()
	w.Put(v, 1)
	return w
}

// Uniform returns the uniform VPF over the given values.
func Uniform(values []string) *VPF {
	w := NewVPF()
	if len(values) == 0 {
		return w
	}
	p := 1.0 / float64(len(values))
	for _, v := range values {
		w.Put(v, p)
	}
	return w
}

// IndependentOPF is the compact per-child representation sketched in
// Section 3.2: each potential child occurs independently with its own
// probability. Section 8 notes this is the ProTDB model as a special case
// of PXML. Expand converts it to the explicit OPF over all 2^n subsets.
type IndependentOPF struct {
	members []string
	p       map[string]float64
}

// NewIndependentOPF returns an empty independent OPF.
func NewIndependentOPF() *IndependentOPF {
	return &IndependentOPF{p: make(map[string]float64)}
}

// Put sets the independent existence probability of one child.
func (w *IndependentOPF) Put(member string, p float64) {
	if _, ok := w.p[member]; !ok {
		w.members = append(w.members, member)
		sort.Strings(w.members)
	}
	w.p[member] = p
}

// Prob returns the independent existence probability of member.
func (w *IndependentOPF) Prob(member string) float64 { return w.p[member] }

// Members returns the potential children in sorted order.
func (w *IndependentOPF) Members() []string {
	out := make([]string, len(w.members))
	copy(out, w.members)
	return out
}

// Validate reports an error unless every probability lies in [0,1].
func (w *IndependentOPF) Validate() error {
	for m, p := range w.p {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return fmt.Errorf("prob: independent OPF member %q has probability %v outside [0,1]", m, p)
		}
	}
	return nil
}

// Expand materializes the explicit OPF: for every subset c of the members,
// ω(c) = Π_{m ∈ c} p(m) · Π_{m ∉ c} (1 − p(m)). The result has 2^n entries;
// callers must bound n (Expand refuses n > 30).
func (w *IndependentOPF) Expand() (*OPF, error) {
	n := len(w.members)
	if n > 30 {
		return nil, fmt.Errorf("prob: refusing to expand independent OPF with %d members", n)
	}
	out := NewOPF()
	for mask := 0; mask < 1<<n; mask++ {
		p := 1.0
		var ids []string
		for i, m := range w.members {
			if mask&(1<<i) != 0 {
				p *= w.p[m]
				ids = append(ids, m)
			} else {
				p *= 1 - w.p[m]
			}
		}
		out.Add(sets.NewSet(ids...), p)
	}
	return out, nil
}

package prob

import (
	"fmt"
	"sort"

	"pxml/internal/sets"
)

// SymmetricOPF is the compact representation for indistinguishable
// objects that Section 3.2 of the paper motivates with the vehicle
// example: "if we have two vehicles, vehicle1 and vehicle2, and a bridge
// bridge1 in a scene S1, we may not be able to distinguish between a scene
// that has bridge1 and vehicle1 in it from a scene that has bridge1 and
// vehicle2 in it" — i.e. ℘(S1)({bridge1, vehicle1}) =
// ℘(S1)({bridge1, vehicle2}).
//
// Children are partitioned into groups of mutually indistinguishable
// objects; the probability of a child set depends only on HOW MANY members
// of each group it contains. The table therefore stores one probability
// per count vector, and Expand spreads each count vector's probability
// uniformly over the child sets realizing it.
type SymmetricOPF struct {
	groups [][]string // each group sorted; groups sorted by first member
	probs  map[string]float64
}

// NewSymmetricOPF creates a symmetric OPF over the given groups of
// indistinguishable children. Groups must be non-empty and pairwise
// disjoint.
func NewSymmetricOPF(groups ...[]string) (*SymmetricOPF, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("prob: symmetric OPF needs at least one group")
	}
	seen := map[string]bool{}
	gs := make([][]string, len(groups))
	for i, g := range groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("prob: symmetric OPF group %d is empty", i)
		}
		cp := append([]string(nil), g...)
		sort.Strings(cp)
		for _, m := range cp {
			if seen[m] {
				return nil, fmt.Errorf("prob: object %q appears in two groups", m)
			}
			seen[m] = true
		}
		gs[i] = cp
	}
	sort.Slice(gs, func(i, j int) bool { return gs[i][0] < gs[j][0] })
	return &SymmetricOPF{groups: gs, probs: make(map[string]float64)}, nil
}

// Groups returns the indistinguishability groups.
func (w *SymmetricOPF) Groups() [][]string {
	out := make([][]string, len(w.groups))
	for i, g := range w.groups {
		out[i] = append([]string(nil), g...)
	}
	return out
}

func countsKey(counts []int) string {
	b := make([]byte, 0, len(counts)*3)
	for _, c := range counts {
		b = append(b, byte('0'+c/10), byte('0'+c%10), ',')
	}
	return string(b)
}

// Put assigns the probability of drawing counts[i] children from group i.
// Each count must lie within [0, |group i|].
func (w *SymmetricOPF) Put(counts []int, p float64) error {
	if len(counts) != len(w.groups) {
		return fmt.Errorf("prob: count vector has %d entries, want %d", len(counts), len(w.groups))
	}
	for i, c := range counts {
		if c < 0 || c > len(w.groups[i]) || c > 99 {
			return fmt.Errorf("prob: count %d out of range for group %d (size %d)", c, i, len(w.groups[i]))
		}
	}
	w.probs[countsKey(counts)] = p
	return nil
}

// Prob returns the probability assigned to a count vector.
func (w *SymmetricOPF) Prob(counts []int) float64 { return w.probs[countsKey(counts)] }

// Validate checks the count-vector table is a probability distribution.
func (w *SymmetricOPF) Validate() error {
	total := 0.0
	for k, p := range w.probs {
		if p < -Tolerance || p > 1+Tolerance {
			return fmt.Errorf("prob: symmetric OPF entry %q has probability %v", k, p)
		}
		total += p
	}
	if total < 1-Tolerance || total > 1+Tolerance {
		return fmt.Errorf("prob: symmetric OPF mass %v != 1", total)
	}
	return nil
}

// Expand materializes the explicit OPF: each count vector's probability is
// split uniformly over every child set realizing it (the Section 3.2
// symmetry). The result size is the product of binomials; Expand refuses
// results above 1<<20 entries.
func (w *SymmetricOPF) Expand() (*OPF, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	out := NewOPF()
	for key, p := range w.probs {
		if p <= 0 {
			continue
		}
		counts := parseCountsKey(key)
		// Enumerate one subset per group with the required size, take the
		// cross product.
		perGroup := make([][]sets.Set, len(w.groups))
		ways := 1
		for i, g := range w.groups {
			perGroup[i] = sets.BoundedSubsets(sets.NewSet(g...), sets.Interval{Min: counts[i], Max: counts[i]})
			ways *= len(perGroup[i])
			if ways == 0 || ways > 1<<20 {
				return nil, fmt.Errorf("prob: symmetric expansion too large")
			}
		}
		share := p / float64(ways)
		acc := []sets.Set{nil}
		for _, options := range perGroup {
			next := make([]sets.Set, 0, len(acc)*len(options))
			for _, a := range acc {
				for _, o := range options {
					next = append(next, a.Union(o))
				}
			}
			acc = next
		}
		for _, s := range acc {
			out.Add(s, share)
		}
	}
	return out, nil
}

func parseCountsKey(key string) []int {
	var counts []int
	for i := 0; i+2 < len(key)+1; i += 3 {
		counts = append(counts, int(key[i]-'0')*10+int(key[i+1]-'0'))
	}
	return counts
}

// IsSymmetric reports whether an explicit OPF is invariant under every
// within-group permutation of the given groups: sets with identical
// per-group counts carry identical probabilities. It is the verification
// companion of Expand, used to check that algebra operations preserve the
// Section 3.2 indistinguishability when they should.
func IsSymmetric(w *OPF, groups [][]string, tol float64) bool {
	index := map[string]int{}
	for gi, g := range groups {
		for _, m := range g {
			index[m] = gi
		}
	}
	byCounts := map[string][]float64{}
	w.Each(func(c sets.Set, p float64) {
		counts := make([]int, len(groups))
		for _, m := range c {
			gi, ok := index[m]
			if !ok {
				return
			}
			counts[gi]++
		}
		k := countsKey(counts)
		byCounts[k] = append(byCounts[k], p)
	})
	for _, ps := range byCounts {
		for i := 1; i < len(ps); i++ {
			if diff(ps[i], ps[0]) > tol {
				return false
			}
		}
	}
	return true
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

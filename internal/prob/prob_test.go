package prob

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pxml/internal/sets"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// opfB1 is the paper's Figure 2 OPF for object B1.
func opfB1() *OPF {
	w := NewOPF()
	w.Put(sets.NewSet("A1"), 0.3)
	w.Put(sets.NewSet("A1", "T1"), 0.35)
	w.Put(sets.NewSet("A2"), 0.1)
	w.Put(sets.NewSet("A2", "T1"), 0.15)
	w.Put(sets.NewSet("A1", "A2"), 0.05)
	w.Put(sets.NewSet("A1", "A2", "T1"), 0.05)
	return w
}

func TestOPFValidateAndMass(t *testing.T) {
	w := opfB1()
	if err := w.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !approx(w.Mass(), 1) {
		t.Errorf("Mass = %v", w.Mass())
	}
	w.Put(sets.NewSet("Z"), 0.5)
	if err := w.Validate(); err == nil {
		t.Error("over-unit mass accepted")
	}
	bad := NewOPF()
	bad.Put(sets.NewSet("a"), 1.5)
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Errorf("probability >1 accepted: %v", err)
	}
	neg := NewOPF()
	neg.Put(sets.NewSet("a"), -0.2)
	neg.Put(sets.NewSet("b"), 1.2)
	if err := neg.Validate(); err == nil {
		t.Error("negative probability accepted")
	}
}

func TestOPFProbContains(t *testing.T) {
	w := opfB1()
	// P(A1 ∈ c) = 0.3 + 0.35 + 0.05 + 0.05 = 0.75.
	if got := w.ProbContains("A1"); !approx(got, 0.75) {
		t.Errorf("ProbContains(A1) = %v, want 0.75", got)
	}
	// P(T1 ∈ c) = 0.35 + 0.15 + 0.05 = 0.55.
	if got := w.ProbContains("T1"); !approx(got, 0.55) {
		t.Errorf("ProbContains(T1) = %v, want 0.55", got)
	}
	if got := w.ProbContains("missing"); got != 0 {
		t.Errorf("ProbContains(missing) = %v", got)
	}
}

func TestOPFConditionContains(t *testing.T) {
	w := opfB1()
	cond, norm, ok := w.ConditionContains("T1")
	if !ok || !approx(norm, 0.55) {
		t.Fatalf("norm = %v ok=%v", norm, ok)
	}
	if err := cond.Validate(); err != nil {
		t.Fatalf("conditioned OPF invalid: %v", err)
	}
	if got := cond.Prob(sets.NewSet("A1", "T1")); !approx(got, 0.35/0.55) {
		t.Errorf("conditional prob = %v", got)
	}
	if got := cond.Prob(sets.NewSet("A1")); got != 0 {
		t.Errorf("excluded set kept with prob %v", got)
	}
	if _, _, ok := w.ConditionContains("missing"); ok {
		t.Error("conditioning on impossible event succeeded")
	}
}

func TestOPFConditionPredicate(t *testing.T) {
	w := opfB1()
	// Condition on |c| == 2 (a cardinality-style selection condition).
	cond, norm, ok := w.Condition(func(c sets.Set) bool { return c.Len() == 2 })
	if !ok || !approx(norm, 0.55) { // 0.35 + 0.15 + 0.05
		t.Fatalf("norm = %v ok=%v", norm, ok)
	}
	if err := cond.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := w.Condition(func(c sets.Set) bool { return false }); ok {
		t.Error("empty predicate condition succeeded")
	}
}

func TestOPFMarginalizeDrop(t *testing.T) {
	w := opfB1()
	m := w.MarginalizeDrop(sets.NewSet("T1"))
	if err := m.Validate(); err != nil {
		t.Fatalf("marginal invalid: %v", err)
	}
	// {A1} absorbs {A1,T1}: 0.3 + 0.35.
	if got := m.Prob(sets.NewSet("A1")); !approx(got, 0.65) {
		t.Errorf("marginal {A1} = %v, want 0.65", got)
	}
	if got := m.Prob(sets.NewSet("A1", "A2")); !approx(got, 0.1) {
		t.Errorf("marginal {A1,A2} = %v, want 0.1", got)
	}
	// Dropping everything leaves all mass on ∅.
	all := w.MarginalizeDrop(sets.NewSet("A1", "A2", "T1"))
	if got := all.Prob(sets.NewSet()); !approx(got, 1) {
		t.Errorf("total marginal = %v", got)
	}
}

func TestOPFProduct(t *testing.T) {
	a := NewOPF()
	a.Put(sets.NewSet("x"), 0.4)
	a.Put(sets.NewSet(), 0.6)
	b := NewOPF()
	b.Put(sets.NewSet("y"), 0.7)
	b.Put(sets.NewSet(), 0.3)
	p := a.Product(b)
	if err := p.Validate(); err != nil {
		t.Fatalf("product invalid: %v", err)
	}
	if got := p.Prob(sets.NewSet("x", "y")); !approx(got, 0.28) {
		t.Errorf("P({x,y}) = %v", got)
	}
	if got := p.Prob(sets.NewSet()); !approx(got, 0.18) {
		t.Errorf("P(∅) = %v", got)
	}
}

func TestOPFNormalizeAndClone(t *testing.T) {
	w := NewOPF()
	w.Put(sets.NewSet("a"), 0.2)
	w.Put(sets.NewSet("b"), 0.6)
	if err := w.Normalize(); err != nil {
		t.Fatal(err)
	}
	if !approx(w.Prob(sets.NewSet("a")), 0.25) {
		t.Errorf("normalized prob = %v", w.Prob(sets.NewSet("a")))
	}
	c := w.Clone()
	c.Put(sets.NewSet("a"), 0)
	if approx(w.Prob(sets.NewSet("a")), 0) {
		t.Error("clone aliases original")
	}
	empty := NewOPF()
	if err := empty.Normalize(); err == nil {
		t.Error("normalizing zero mass accepted")
	}
}

func TestOPFEntriesOrderAndString(t *testing.T) {
	w := opfB1()
	es := w.Entries()
	for i := 1; i < len(es); i++ {
		if es[i-1].Set.Len() > es[i].Set.Len() {
			t.Errorf("entries not ordered by size: %v", es)
		}
	}
	if s := w.String(); !strings.Contains(s, "{A1}=0.3") {
		t.Errorf("String = %q", s)
	}
	if len(w.Support()) != 6 {
		t.Errorf("Support = %v", w.Support())
	}
	n := 0
	w.Each(func(c sets.Set, p float64) { n++ })
	if n != 6 {
		t.Errorf("Each visited %d entries", n)
	}
}

func TestVPFBasics(t *testing.T) {
	w := NewVPF()
	w.Put("VQDB", 0.7)
	w.Put("Lore", 0.3)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if !approx(w.Prob("VQDB"), 0.7) || w.Prob("missing") != 0 {
		t.Error("Prob misbehaves")
	}
	es := w.Entries()
	if len(es) != 2 || es[0].Value != "Lore" {
		t.Errorf("Entries = %v", es)
	}
	c := w.Clone()
	c.Put("VQDB", 0)
	if w.Prob("VQDB") != 0.7 {
		t.Error("clone aliases original")
	}
	w.Put("extra", 0.5)
	if err := w.Validate(); err == nil {
		t.Error("over-unit VPF accepted")
	}
	bad := NewVPF()
	bad.Put("x", math.NaN())
	if err := bad.Validate(); err == nil {
		t.Error("NaN accepted")
	}
}

func TestPointMassAndUniform(t *testing.T) {
	pm := PointMass("v")
	if err := pm.Validate(); err != nil || pm.Prob("v") != 1 {
		t.Errorf("PointMass: %v %v", err, pm.Prob("v"))
	}
	u := Uniform([]string{"a", "b", "c", "d"})
	if err := u.Validate(); err != nil || !approx(u.Prob("a"), 0.25) {
		t.Errorf("Uniform: %v", u.Entries())
	}
	if Uniform(nil).Len() != 0 {
		t.Error("Uniform(nil) should be empty")
	}
}

func TestIndependentOPFExpand(t *testing.T) {
	w := NewIndependentOPF()
	w.Put("a", 0.5)
	w.Put("b", 0.25)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	e, err := w.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(); err != nil {
		t.Fatalf("expanded OPF invalid: %v", err)
	}
	if got := e.Prob(sets.NewSet("a", "b")); !approx(got, 0.125) {
		t.Errorf("P({a,b}) = %v", got)
	}
	if got := e.Prob(sets.NewSet()); !approx(got, 0.375) {
		t.Errorf("P(∅) = %v", got)
	}
	// Marginal existence probabilities round-trip.
	if got := e.ProbContains("a"); !approx(got, 0.5) {
		t.Errorf("marginal a = %v", got)
	}
	if got := e.ProbContains("b"); !approx(got, 0.25) {
		t.Errorf("marginal b = %v", got)
	}
}

func TestIndependentOPFValidateAndLimit(t *testing.T) {
	w := NewIndependentOPF()
	w.Put("a", 1.5)
	if err := w.Validate(); err == nil {
		t.Error("invalid independent prob accepted")
	}
	big := NewIndependentOPF()
	for i := 0; i < 31; i++ {
		big.Put(string(rune('a'+i%26))+string(rune('0'+i/26)), 0.5)
	}
	if _, err := big.Expand(); err == nil {
		t.Error("oversized expansion accepted")
	}
	if got := w.Members(); len(got) != 1 || got[0] != "a" {
		t.Errorf("Members = %v", got)
	}
	if w.Prob("a") != 1.5 {
		t.Errorf("Prob = %v", w.Prob("a"))
	}
}

// TestQuickExpandIsDistribution: any independent OPF expands to a valid
// distribution whose per-member marginals equal the inputs.
func TestQuickExpandIsDistribution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := NewIndependentOPF()
		n := 1 + r.Intn(6)
		names := make([]string, n)
		for i := 0; i < n; i++ {
			names[i] = string(rune('a' + i))
			w.Put(names[i], r.Float64())
		}
		e, err := w.Expand()
		if err != nil || e.Validate() != nil {
			return false
		}
		for _, m := range names {
			if math.Abs(e.ProbContains(m)-w.Prob(m)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConditionThenMassLaw: conditioning preserves the probability
// ratio law P(A|B)·P(B) = P(A∧B) on random OPFs.
func TestQuickConditionThenMassLaw(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := NewOPF()
		universe := []string{"a", "b", "c"}
		total := 0.0
		weights := make([]float64, 8)
		for i := range weights {
			weights[i] = r.Float64()
			total += weights[i]
		}
		for mask := 0; mask < 8; mask++ {
			var ids []string
			for i, u := range universe {
				if mask&(1<<i) != 0 {
					ids = append(ids, u)
				}
			}
			w.Put(sets.NewSet(ids...), weights[mask]/total)
		}
		cond, norm, ok := w.ConditionContains("a")
		if !ok {
			return norm == 0
		}
		// P(c | a ∈ c) * P(a ∈ c) must equal original P(c) for c ∋ a.
		for _, e := range cond.Entries() {
			if math.Abs(e.Prob*norm-w.Prob(e.Set)) > 1e-9 {
				return false
			}
		}
		return math.Abs(cond.Mass()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMarginalizePreservesMass: marginalization never changes total
// probability mass.
func TestQuickMarginalizePreservesMass(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := NewOPF()
		names := []string{"a", "b", "c", "d"}
		for i := 0; i < 6; i++ {
			var ids []string
			for _, n := range names {
				if r.Intn(2) == 0 {
					ids = append(ids, n)
				}
			}
			w.Add(sets.NewSet(ids...), r.Float64())
		}
		before := w.Mass()
		var drop []string
		for _, n := range names {
			if r.Intn(2) == 0 {
				drop = append(drop, n)
			}
		}
		after := w.MarginalizeDrop(sets.NewSet(drop...)).Mass()
		return math.Abs(before-after) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

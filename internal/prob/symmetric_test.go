package prob

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pxml/internal/sets"
)

func TestSymmetricOPFVehicles(t *testing.T) {
	// The Section 3.2 scene: one bridge group, one two-vehicle group.
	w, err := NewSymmetricOPF([]string{"bridge1"}, []string{"vehicle1", "vehicle2"})
	if err != nil {
		t.Fatal(err)
	}
	// Always the bridge; one vehicle with 0.7, both with 0.3.
	if err := w.Put([]int{1, 1}, 0.7); err != nil {
		t.Fatal(err)
	}
	if err := w.Put([]int{1, 2}, 0.3); err != nil {
		t.Fatal(err)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	e, err := w.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(); err != nil {
		t.Fatalf("expanded invalid: %v", err)
	}
	// Indistinguishability: the two single-vehicle sets share probability.
	p1 := e.Prob(sets.NewSet("bridge1", "vehicle1"))
	p2 := e.Prob(sets.NewSet("bridge1", "vehicle2"))
	if math.Abs(p1-0.35) > 1e-12 || math.Abs(p2-0.35) > 1e-12 {
		t.Errorf("single-vehicle probs = %v, %v", p1, p2)
	}
	if got := e.Prob(sets.NewSet("bridge1", "vehicle1", "vehicle2")); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("both-vehicles prob = %v", got)
	}
	if !IsSymmetric(e, w.Groups(), 1e-12) {
		t.Error("expansion not symmetric")
	}
}

func TestSymmetricOPFErrors(t *testing.T) {
	if _, err := NewSymmetricOPF(); err == nil {
		t.Error("empty groups accepted")
	}
	if _, err := NewSymmetricOPF([]string{}); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := NewSymmetricOPF([]string{"a"}, []string{"a"}); err == nil {
		t.Error("overlapping groups accepted")
	}
	w, err := NewSymmetricOPF([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Put([]int{3}, 1); err == nil {
		t.Error("oversized count accepted")
	}
	if err := w.Put([]int{1, 1}, 1); err == nil {
		t.Error("wrong-arity counts accepted")
	}
	if err := w.Put([]int{-1}, 1); err == nil {
		t.Error("negative count accepted")
	}
	_ = w.Put([]int{1}, 0.5)
	if err := w.Validate(); err == nil {
		t.Error("sub-unit mass accepted")
	}
}

func TestIsSymmetricDetectsAsymmetry(t *testing.T) {
	w := NewOPF()
	w.Put(sets.NewSet("v1"), 0.6)
	w.Put(sets.NewSet("v2"), 0.4)
	if IsSymmetric(w, [][]string{{"v1", "v2"}}, 1e-12) {
		t.Error("asymmetric OPF reported symmetric")
	}
}

// TestQuickSymmetricExpansion: random symmetric tables expand to valid,
// symmetric explicit OPFs whose per-count-vector mass matches the table.
func TestQuickSymmetricExpansion(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g1n := 1 + r.Intn(3)
		g2n := 1 + r.Intn(3)
		g1 := make([]string, g1n)
		for i := range g1 {
			g1[i] = "a" + string(rune('0'+i))
		}
		g2 := make([]string, g2n)
		for i := range g2 {
			g2[i] = "b" + string(rune('0'+i))
		}
		w, err := NewSymmetricOPF(g1, g2)
		if err != nil {
			return false
		}
		total := 0.0
		type cv struct{ c1, c2 int }
		weights := map[cv]float64{}
		for c1 := 0; c1 <= g1n; c1++ {
			for c2 := 0; c2 <= g2n; c2++ {
				weights[cv{c1, c2}] = r.Float64() + 1e-3
				total += weights[cv{c1, c2}]
			}
		}
		for k, v := range weights {
			if err := w.Put([]int{k.c1, k.c2}, v/total); err != nil {
				return false
			}
		}
		e, err := w.Expand()
		if err != nil || e.Validate() != nil {
			return false
		}
		if !IsSymmetric(e, w.Groups(), 1e-9) {
			return false
		}
		// Aggregate expanded mass per count vector matches the table.
		agg := map[cv]float64{}
		e.Each(func(c sets.Set, p float64) {
			var k cv
			for _, m := range c {
				if m[0] == 'a' {
					k.c1++
				} else {
					k.c2++
				}
			}
			agg[k] += p
		})
		for k, v := range weights {
			if math.Abs(agg[k]-v/total) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

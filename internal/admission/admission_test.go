package admission

import (
	"sync"
	"testing"
	"time"

	"pxml/internal/metrics"
)

// fakeClock advances only when told, so bucket refill is deterministic.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func mustNew(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTokenBucketRateAndBurst(t *testing.T) {
	clk := newFakeClock()
	c := mustNew(t, Config{
		Default: Quota{Rate: 10, Burst: 3},
		Now:     clk.now,
	})
	// Burst of 3 admits three back-to-back, then sheds.
	for i := 0; i < 3; i++ {
		if d := c.Admit("a"); !d.OK {
			t.Fatalf("admit %d shed: %+v", i, d)
		}
	}
	d := c.Admit("a")
	if d.OK {
		t.Fatal("fourth instantaneous request admitted past burst")
	}
	if d.Reason != "quota" {
		t.Errorf("shed reason = %q, want quota", d.Reason)
	}
	// At 10 rps a full token is 100ms away.
	if d.RetryAfter <= 0 || d.RetryAfter > 150*time.Millisecond {
		t.Errorf("RetryAfter = %v, want ~100ms", d.RetryAfter)
	}
	// After the hinted wait the bucket has refilled exactly one token.
	clk.advance(100 * time.Millisecond)
	if d := c.Admit("a"); !d.OK {
		t.Fatalf("post-refill request shed: %+v", d)
	}
	if d := c.Admit("a"); d.OK {
		t.Fatal("second post-refill request admitted with only one token refilled")
	}
	// Refill never exceeds burst: a long idle period still caps at 3.
	clk.advance(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		if c.Admit("a").OK {
			admitted++
		}
	}
	if admitted != 3 {
		t.Errorf("admitted %d after long idle, want burst cap 3", admitted)
	}
}

func TestTenantIsolation(t *testing.T) {
	clk := newFakeClock()
	reg := metrics.NewRegistry()
	c := mustNew(t, Config{
		Default:  Quota{Rate: 5, Burst: 2},
		Registry: reg,
		Now:      clk.now,
	})
	// Hot tenant burns its quota; cold tenant must be untouched.
	for i := 0; i < 10; i++ {
		c.Admit("hot")
	}
	if d := c.Admit("hot"); d.OK {
		t.Fatal("hot tenant still admitted after exhausting quota")
	}
	for i := 0; i < 2; i++ {
		if d := c.Admit("cold"); !d.OK {
			t.Fatalf("cold tenant shed by hot tenant's exhaustion: %+v", d)
		}
	}
	if got := reg.Counter("admission_shed.hot").Value(); got != 9 {
		t.Errorf("admission_shed.hot = %d, want 9", got)
	}
	if got := reg.Counter("admission_shed.cold").Value(); got != 0 {
		t.Errorf("admission_shed.cold = %d, want 0", got)
	}
	if got := reg.Counter("admission_admitted_total").Value(); got != 4 {
		t.Errorf("admission_admitted_total = %d, want 4", got)
	}
}

func TestPerTenantQuotaOverridesDefault(t *testing.T) {
	clk := newFakeClock()
	c := mustNew(t, Config{
		Default: Quota{Rate: 1, Burst: 1},
		Tenants: map[string]Quota{"vip": {Rate: 100, Burst: 50}},
		Now:     clk.now,
	})
	admitted := 0
	for i := 0; i < 50; i++ {
		if c.Admit("vip").OK {
			admitted++
		}
	}
	if admitted != 50 {
		t.Errorf("vip admitted %d of 50 burst", admitted)
	}
	if c.Admit("other").OK && c.Admit("other").OK {
		t.Error("default tenant exceeded burst 1")
	}
}

func TestUnlimitedQuota(t *testing.T) {
	c := mustNew(t, Config{Now: newFakeClock().now})
	for i := 0; i < 1000; i++ {
		if !c.Admit("x").OK {
			t.Fatal("unlimited quota shed a request")
		}
	}
}

func TestWeightedFairnessUnderOverload(t *testing.T) {
	clk := newFakeClock()
	c := mustNew(t, Config{
		// No rate quota: only the fairness tier is active.
		InflightLimit:    10,
		OverloadFraction: 0.5,
		Tenants: map[string]Quota{
			"heavy": {Weight: 3},
			"light": {Weight: 1},
		},
		Now: clk.now,
	})
	// Sharing is work-conserving: while heavy is the only active tenant
	// its fair share is the whole capacity, so it fills all 10 slots.
	for i := 0; i < 10; i++ {
		if !c.Admit("heavy").OK {
			t.Fatalf("sole-tenant admit %d shed (shares must be work-conserving)", i)
		}
	}
	// At 10/10 inflight heavy has reached its (whole-capacity) share.
	if d := c.Admit("heavy"); d.OK {
		t.Fatal("heavy exceeded the inflight capacity")
	} else if d.Reason != "overload" {
		t.Errorf("shed reason = %q, want overload", d.Reason)
	}
	// The light tenant still gets in: once it is active the shares are
	// heavy 3/4·10 = 7.5 and light 1/4·10 = 2.5, and light is below its.
	if d := c.Admit("light"); !d.OK {
		t.Fatalf("light tenant shed while under its share: %+v", d)
	}
	// Heavy is now far over its 7.5 share and keeps shedding...
	if c.Admit("heavy").OK {
		t.Fatal("heavy admitted while over its weighted share")
	}
	// ...until releases bring it back under: 4 inflight < 7.5.
	for i := 0; i < 6; i++ {
		c.Release("heavy")
	}
	if !c.Admit("heavy").OK {
		t.Error("heavy still shed after draining below its share")
	}
}

func TestReloadPreservesStateAndCounters(t *testing.T) {
	clk := newFakeClock()
	reg := metrics.NewRegistry()
	c := mustNew(t, Config{
		Default:  Quota{Rate: 1, Burst: 5},
		Registry: reg,
		Now:      clk.now,
	})
	for i := 0; i < 6; i++ {
		c.Admit("a")
	}
	shedBefore := reg.Counter("admission_shed.a").Value()
	if shedBefore != 1 {
		t.Fatalf("shed before reload = %d", shedBefore)
	}
	// Loosen the quota at runtime: admits resume immediately.
	if err := c.Reload(Quota{Rate: 1000, Burst: 100}, nil); err != nil {
		t.Fatal(err)
	}
	// The old bucket was empty; under the new quota it refills at the
	// new rate from the reload instant.
	clk.advance(50 * time.Millisecond) // 50 tokens at 1000/s
	if d := c.Admit("a"); !d.OK {
		t.Fatalf("admit after loosening reload shed: %+v", d)
	}
	if got := reg.Counter("admission_shed.a").Value(); got != shedBefore {
		t.Errorf("reload reset shed counter: %d != %d", got, shedBefore)
	}
	// Tightening re-caps an over-full bucket immediately.
	if err := c.Reload(Quota{Rate: 1, Burst: 2}, nil); err != nil {
		t.Fatal(err)
	}
	admitted := 0
	for i := 0; i < 10; i++ {
		if c.Admit("a").OK {
			admitted++
		}
	}
	if admitted > 2 {
		t.Errorf("admitted %d after tightening to burst 2", admitted)
	}
}

func TestReloadValidation(t *testing.T) {
	c := mustNew(t, Config{Now: newFakeClock().now})
	if err := c.Reload(Quota{Rate: 5, Burst: 0.5}, nil); err == nil {
		t.Error("reload accepted burst < 1 with positive rate")
	}
	if err := c.Reload(Quota{}, map[string]Quota{"x": {Weight: -1}}); err == nil {
		t.Error("reload accepted negative weight")
	}
	if _, err := New(Config{Default: Quota{Rate: 1, Burst: 0}}); err == nil {
		t.Error("New accepted default burst 0 with rate 1")
	}
}

func TestStateSnapshot(t *testing.T) {
	clk := newFakeClock()
	c := mustNew(t, Config{
		Default:       Quota{Rate: 10, Burst: 5},
		Tenants:       map[string]Quota{"b": {Rate: 1, Burst: 1}},
		InflightLimit: 8,
		Now:           clk.now,
	})
	c.Admit("a")
	c.Admit("b")
	s := c.State()
	if s.Inflight != 2 || s.InflightLimit != 8 {
		t.Errorf("snapshot inflight = %d/%d", s.Inflight, s.InflightLimit)
	}
	if len(s.TenantNames) != 2 || s.TenantNames[0] != "a" || s.TenantNames[1] != "b" {
		t.Errorf("TenantNames = %v", s.TenantNames)
	}
	if ts := s.Tenants["a"]; ts.Quota.Rate != 10 || ts.Inflight != 1 || ts.Tokens != 4 {
		t.Errorf("tenant a state = %+v", ts)
	}
	if ts := s.Tenants["b"]; ts.Quota.Rate != 1 || ts.Tokens != 0 {
		t.Errorf("tenant b state = %+v", ts)
	}
}

func TestConcurrentAdmitRelease(t *testing.T) {
	c := mustNew(t, Config{
		Default:       Quota{Rate: 1e9, Burst: 1e9},
		InflightLimit: 64,
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := string(rune('a' + g%4))
			for i := 0; i < 500; i++ {
				if c.Admit(tenant).OK {
					c.Release(tenant)
				}
			}
		}(g)
	}
	wg.Wait()
	if s := c.State(); s.Inflight != 0 {
		t.Errorf("inflight after all released = %d", s.Inflight)
	}
}

// Package admission implements per-tenant request admission control for
// the pxmld server: token-bucket rate quotas with configurable rate and
// burst, plus weighted fair sharing of the server's inflight capacity
// under overload. It sits in front of the global max-inflight shedder —
// a tenant that exhausts its quota is shed with 429 and a Retry-After
// hint before it can queue on the shared semaphore, so one hot tenant
// cannot starve the others.
//
// Tenants are keyed by instance name (the unit of isolation everywhere
// else in pxmld: storage, caching, and now capacity). The zero tenant ""
// groups requests that target no instance (catalog listings, admin).
//
// The controller is safe for concurrent use. Admit takes one short mutex
// — the shared bucket map plus the inflight accounting — which is
// negligible next to a statement evaluation.
package admission

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"pxml/internal/metrics"
)

// Quota bounds one tenant's request rate.
type Quota struct {
	// Rate is the sustained admission rate in requests per second.
	// Zero or negative means unlimited (no token bucket for the tenant).
	Rate float64 `json:"rate"`
	// Burst is the bucket capacity: how many requests may be admitted
	// instantaneously above the sustained rate. Admit spends one token
	// per request, so Burst < 1 with Rate > 0 admits nothing; Validate
	// rejects it.
	Burst float64 `json:"burst"`
	// Weight is the tenant's share of inflight capacity under overload,
	// relative to the other active tenants. Zero or negative defaults
	// to 1.
	Weight float64 `json:"weight"`
}

// Unlimited reports whether the quota imposes no rate bound.
func (q Quota) Unlimited() bool { return q.Rate <= 0 }

// Validate rejects quotas that silently admit nothing or weigh nothing.
func (q Quota) Validate() error {
	if q.Rate > 0 && q.Burst < 1 {
		return fmt.Errorf("quota burst %g < 1 with rate %g would admit nothing", q.Burst, q.Rate)
	}
	if q.Weight < 0 {
		return fmt.Errorf("quota weight %g is negative", q.Weight)
	}
	return nil
}

// Config assembles a Controller.
type Config struct {
	// Default applies to every tenant without an explicit entry in
	// Tenants. The zero value (unlimited, weight 1) admits everything —
	// the controller then only enforces fairness under overload.
	Default Quota
	// Tenants maps tenant (instance) names to their quotas.
	Tenants map[string]Quota
	// InflightLimit is the server's max-inflight bound that fairness
	// divides under overload. Zero disables the fairness tier (the rate
	// quotas still apply).
	InflightLimit int
	// OverloadFraction is the inflight utilisation (0..1] above which
	// weighted fair sharing kicks in. Zero defaults to 0.75.
	OverloadFraction float64
	// Registry, when set, receives per-tenant admitted/shed counters
	// (admission_admitted.<tenant>, admission_shed.<tenant>) plus the
	// totals, so the statsd exporter picks them up for free.
	Registry *metrics.Registry
	// Now is the clock, injectable for tests. Defaults to time.Now.
	Now func() time.Time
}

// defaultOverloadFraction: fairness engages at 75% inflight utilisation.
// Below that there is spare capacity and shedding an in-quota request
// would be pure waste; above it the shared semaphore is close to queuing.
const defaultOverloadFraction = 0.75

// Decision is the outcome of one Admit call.
type Decision struct {
	// OK reports whether the request may proceed. When true the caller
	// MUST pair the Admit with Release(tenant) once the request ends.
	OK bool
	// RetryAfter hints when the tenant's bucket will hold a full token
	// again (zero when shed for fairness: retry immediately after the
	// overload drains). Rounded up to whole seconds by the HTTP layer.
	RetryAfter time.Duration
	// Reason distinguishes the shed tiers: "quota" (token bucket empty)
	// or "overload" (weighted fair share exceeded). Empty when admitted.
	Reason string
}

// bucket is one tenant's live admission state.
type bucket struct {
	tokens   float64   // current token balance, capped at quota burst
	last     time.Time // last refill instant
	inflight int       // requests admitted and not yet released
}

// Controller admits or sheds requests per tenant.
type Controller struct {
	mu       sync.Mutex
	def      Quota
	tenants  map[string]Quota
	buckets  map[string]*bucket
	limit    int
	overload float64
	now      func() time.Time
	reg      *metrics.Registry

	inflight int // total admitted and not yet released
}

// New builds a Controller from cfg. Invalid quotas are rejected.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Default.Validate(); err != nil {
		return nil, fmt.Errorf("default quota: %w", err)
	}
	for name, q := range cfg.Tenants {
		if err := q.Validate(); err != nil {
			return nil, fmt.Errorf("tenant %q: %w", name, err)
		}
	}
	c := &Controller{
		def:      cfg.Default,
		tenants:  cloneQuotas(cfg.Tenants),
		buckets:  make(map[string]*bucket),
		limit:    cfg.InflightLimit,
		overload: cfg.OverloadFraction,
		now:      cfg.Now,
		reg:      cfg.Registry,
	}
	if c.overload <= 0 || c.overload > 1 {
		c.overload = defaultOverloadFraction
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c, nil
}

func cloneQuotas(m map[string]Quota) map[string]Quota {
	out := make(map[string]Quota, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// quotaFor resolves the effective quota for a tenant (caller holds mu).
func (c *Controller) quotaFor(tenant string) Quota {
	if q, ok := c.tenants[tenant]; ok {
		return q
	}
	return c.def
}

// weightOf normalises a quota's fairness weight.
func weightOf(q Quota) float64 {
	if q.Weight <= 0 {
		return 1
	}
	return q.Weight
}

// Admit decides whether one request from tenant may proceed. Admitted
// requests hold one unit of inflight accounting until Release.
func (c *Controller) Admit(tenant string) Decision {
	c.mu.Lock()
	q := c.quotaFor(tenant)
	b := c.buckets[tenant]
	now := c.now()
	if b == nil {
		b = &bucket{tokens: q.Burst, last: now}
		c.buckets[tenant] = b
	}

	// Tier 1: the tenant's own token bucket.
	if !q.Unlimited() {
		b.tokens = math.Min(q.Burst, b.tokens+now.Sub(b.last).Seconds()*q.Rate)
		b.last = now
		if b.tokens < 1 {
			wait := time.Duration((1 - b.tokens) / q.Rate * float64(time.Second))
			c.mu.Unlock()
			c.count(tenant, false)
			return Decision{RetryAfter: wait, Reason: "quota"}
		}
	}

	// Tier 2: weighted fair sharing of the inflight capacity, engaged
	// only when the server is near its limit. A tenant already using at
	// least its fair share is shed so the headroom goes to the others.
	if c.limit > 0 && float64(c.inflight) >= c.overload*float64(c.limit) {
		totalWeight := 0.0
		for name, tb := range c.buckets {
			if tb.inflight > 0 || name == tenant {
				totalWeight += weightOf(c.quotaFor(name))
			}
		}
		share := weightOf(q) / totalWeight * float64(c.limit)
		if float64(b.inflight) >= share {
			c.mu.Unlock()
			c.count(tenant, false)
			return Decision{Reason: "overload"}
		}
	}

	if !q.Unlimited() {
		b.tokens--
	}
	b.inflight++
	c.inflight++
	c.mu.Unlock()
	c.count(tenant, true)
	return Decision{OK: true}
}

// Release returns one admitted request's inflight unit. Must be called
// exactly once per successful Admit.
func (c *Controller) Release(tenant string) {
	c.mu.Lock()
	if b := c.buckets[tenant]; b != nil && b.inflight > 0 {
		b.inflight--
		c.inflight--
	}
	c.mu.Unlock()
}

// count records the decision in the registry, outside the lock.
func (c *Controller) count(tenant string, admitted bool) {
	if c.reg == nil {
		return
	}
	if tenant == "" {
		tenant = "_none"
	}
	if admitted {
		c.reg.Counter("admission_admitted_total").Inc()
		c.reg.Counter("admission_admitted." + tenant).Inc()
	} else {
		c.reg.Counter("admission_shed_total").Inc()
		c.reg.Counter("admission_shed." + tenant).Inc()
	}
}

// Reload swaps the quota table at runtime (the admin endpoint's
// PUT /v1/admin/quotas). Bucket levels are re-capped to the new bursts;
// inflight accounting and registry counters carry over untouched.
func (c *Controller) Reload(def Quota, tenants map[string]Quota) error {
	if err := def.Validate(); err != nil {
		return fmt.Errorf("default quota: %w", err)
	}
	for name, q := range tenants {
		if err := q.Validate(); err != nil {
			return fmt.Errorf("tenant %q: %w", name, err)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.def = def
	c.tenants = cloneQuotas(tenants)
	now := c.now()
	for name, b := range c.buckets {
		q := c.quotaFor(name)
		if q.Unlimited() {
			continue
		}
		// Refill under the old clock first, then cap to the new burst so
		// a tightened quota takes effect immediately.
		b.tokens = math.Min(q.Burst, b.tokens+now.Sub(b.last).Seconds()*q.Rate)
		b.last = now
	}
	return nil
}

// TenantState is one tenant's snapshot row.
type TenantState struct {
	Quota    Quota   `json:"quota"`
	Tokens   float64 `json:"tokens"`
	Inflight int     `json:"inflight"`
}

// Snapshot is the controller's JSON face: the active configuration plus
// per-tenant live state, with tenant names sorted for stable output.
type Snapshot struct {
	Default          Quota                  `json:"default_quota"`
	InflightLimit    int                    `json:"inflight_limit"`
	OverloadFraction float64                `json:"overload_fraction"`
	Inflight         int                    `json:"inflight"`
	TenantNames      []string               `json:"tenant_names"`
	Tenants          map[string]TenantState `json:"tenants"`
}

// State returns the current configuration and per-tenant state.
func (c *Controller) State() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{
		Default:          c.def,
		InflightLimit:    c.limit,
		OverloadFraction: c.overload,
		Inflight:         c.inflight,
		Tenants:          make(map[string]TenantState),
	}
	for name, q := range c.tenants {
		s.Tenants[name] = TenantState{Quota: q}
	}
	for name, b := range c.buckets {
		ts := s.Tenants[name]
		if _, ok := c.tenants[name]; !ok {
			ts.Quota = c.def
		}
		ts.Tokens = b.tokens
		ts.Inflight = b.inflight
		s.Tenants[name] = ts
	}
	s.TenantNames = make([]string, 0, len(s.Tenants))
	for name := range s.Tenants {
		s.TenantNames = append(s.TenantNames, name)
	}
	sort.Strings(s.TenantNames)
	return s
}

package model

import (
	"strings"
	"testing"
)

// figure1 builds the semistructured instance of Figure 1 in the paper.
func figure1(t *testing.T) *Instance {
	t.Helper()
	s := NewInstance("R")
	if err := s.RegisterType(NewType("title-type", "VQDB", "Lore")); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterType(NewType("institution-type", "Stanford", "UMD")); err != nil {
		t.Fatal(err)
	}
	type edge struct{ from, to, l string }
	for _, e := range []edge{
		{"R", "B1", "book"}, {"R", "B2", "book"}, {"R", "B3", "book"},
		{"B1", "T1", "title"}, {"B1", "A1", "author"}, {"B1", "A2", "author"},
		{"B2", "A1", "author"}, {"B2", "A2", "author"}, {"B2", "A3", "author"},
		{"B3", "T2", "title"}, {"B3", "A3", "author"},
		{"A1", "I1", "institution"}, {"A2", "I1", "institution"},
		{"A2", "I2", "institution"}, {"A3", "I2", "institution"},
	} {
		if err := s.AddEdge(e.from, e.to, e.l); err != nil {
			t.Fatal(err)
		}
	}
	for _, lv := range []struct{ o, tn, v string }{
		{"T1", "title-type", "VQDB"}, {"T2", "title-type", "Lore"},
		{"I1", "institution-type", "Stanford"}, {"I2", "institution-type", "UMD"},
	} {
		if err := s.SetLeaf(lv.o, lv.tn, lv.v); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestFigure1Valid(t *testing.T) {
	s := figure1(t)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s.NumObjects() != 11 {
		t.Errorf("objects = %d, want 11", s.NumObjects())
	}
	if got := s.LCh("B1", "author"); len(got) != 2 {
		t.Errorf("lch(B1,author) = %v", got)
	}
	if v, ok := s.ValueOf("T1"); !ok || v != "VQDB" {
		t.Errorf("val(T1) = %q,%v", v, ok)
	}
	if ty, ok := s.TypeOf("I2"); !ok || ty.Name != "institution-type" {
		t.Errorf("τ(I2) = %v,%v", ty, ok)
	}
	if _, ok := s.TypeOf("B1"); ok {
		t.Error("B1 should be untyped")
	}
}

func TestTypeValidation(t *testing.T) {
	if err := (Type{Name: "", Domain: []Value{"x"}}).Validate(); err == nil {
		t.Error("empty type name accepted")
	}
	if err := (Type{Name: "t"}).Validate(); err == nil {
		t.Error("empty domain accepted")
	}
	ty := NewType("t", "b", "a", "b")
	if len(ty.Domain) != 2 || ty.Domain[0] != "a" {
		t.Errorf("domain not canonical: %v", ty.Domain)
	}
	if !ty.Has("a") || ty.Has("c") {
		t.Error("Has misbehaves")
	}
}

func TestRegisterTypeConflicts(t *testing.T) {
	s := NewInstance("R")
	if err := s.RegisterType(NewType("t", "a")); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterType(NewType("t", "a")); err != nil {
		t.Errorf("identical re-registration should succeed: %v", err)
	}
	if err := s.RegisterType(NewType("t", "b")); err == nil {
		t.Error("conflicting re-registration accepted")
	}
}

func TestSetLeafErrors(t *testing.T) {
	s := NewInstance("R")
	if err := s.SetLeaf("X", "missing", "v"); err == nil {
		t.Error("unknown type accepted")
	}
	_ = s.RegisterType(NewType("t", "a", "b"))
	if err := s.SetLeaf("X", "t", "z"); err == nil {
		t.Error("out-of-domain value accepted")
	}
	if err := s.SetLeaf("X", "t", "a"); err != nil {
		t.Errorf("valid SetLeaf failed: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	// Unreachable object.
	s := NewInstance("R")
	s.AddObject("orphan")
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("unreachable object: err=%v", err)
	}

	// Root with a parent.
	s2 := NewInstance("R")
	_ = s2.AddEdge("R", "X", "l")
	_ = s2.AddEdge("X", "R", "l")
	if err := s2.Validate(); err == nil {
		t.Error("root with parent accepted")
	}

	// Non-leaf carrying a leaf type.
	s3 := NewInstance("R")
	_ = s3.RegisterType(NewType("t", "a"))
	_ = s3.SetLeaf("X", "t", "a")
	_ = s3.AddEdge("R", "X", "l")
	_ = s3.AddEdge("X", "Y", "l")
	if err := s3.Validate(); err == nil || !strings.Contains(err.Error(), "non-leaf") {
		t.Errorf("typed non-leaf: err=%v", err)
	}
}

func TestCloneAndEqual(t *testing.T) {
	s := figure1(t)
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal")
	}
	_ = c.AddEdge("B1", "A3", "author")
	if s.Equal(c) {
		t.Error("mutation of clone should break equality")
	}
	if s.Graph().HasEdge("B1", "A3") {
		t.Error("clone shares graph with original")
	}
}

func TestCanonicalKeyDistinguishesValues(t *testing.T) {
	a := NewInstance("R")
	_ = a.RegisterType(NewType("t", "x", "y"))
	_ = a.AddEdge("R", "L", "leaf")
	_ = a.SetLeaf("L", "t", "x")

	b := NewInstance("R")
	_ = b.RegisterType(NewType("t", "x", "y"))
	_ = b.AddEdge("R", "L", "leaf")
	_ = b.SetLeaf("L", "t", "y")

	if a.CanonicalKey() == b.CanonicalKey() {
		t.Error("instances differing only in leaf value share a key")
	}

	// Differ only by edge label.
	c := NewInstance("R")
	_ = c.AddEdge("R", "L", "one")
	d := NewInstance("R")
	_ = d.AddEdge("R", "L", "two")
	if c.CanonicalKey() == d.CanonicalKey() {
		t.Error("instances differing only in edge label share a key")
	}
}

func TestStringRendering(t *testing.T) {
	s := figure1(t)
	out := s.String()
	for _, want := range []string{"root=R", "B1 -author-> A1", "T1 : title-type = VQDB"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

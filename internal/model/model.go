// Package model implements the deterministic semistructured data (SD)
// model of Section 3.1 of the PXML paper: rooted, edge-labeled directed
// graphs over objects, with types and values attached to leaves
// (Definition 3.3). It is the representation of the "possible worlds" that
// probabilistic instances range over.
package model

import (
	"fmt"
	"sort"
	"strings"

	"pxml/internal/graph"
)

// ObjectID identifies an object (a vertex drawn from the object universe O).
type ObjectID = string

// Label is an edge label drawn from the label universe L.
type Label = string

// Value is a leaf value. PXML values are atomic strings; richer domains are
// encoded by their string representation, matching the paper's treatment of
// leaf domains as finite sets of constants.
type Value = string

// TypeName names a leaf type drawn from the type universe T.
type TypeName = string

// Type is a leaf type: a name together with its finite domain of values,
// e.g. dom(title-type) = {VQDB, Lore} in Example 3.1.
type Type struct {
	Name   TypeName
	Domain []Value
}

// NewType returns a Type with a canonical (sorted, deduplicated) domain.
func NewType(name TypeName, domain ...Value) Type {
	d := make([]Value, len(domain))
	copy(d, domain)
	sort.Strings(d)
	w := 0
	for i, v := range d {
		if i == 0 || v != d[w-1] {
			d[w] = v
			w++
		}
	}
	return Type{Name: name, Domain: d[:w]}
}

// Has reports whether v belongs to the type's domain.
func (t Type) Has(v Value) bool {
	i := sort.SearchStrings(t.Domain, v)
	return i < len(t.Domain) && t.Domain[i] == v
}

// Validate reports an error if the type has no name or an empty domain.
func (t Type) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("model: type with empty name")
	}
	if len(t.Domain) == 0 {
		return fmt.Errorf("model: type %q has empty domain", t.Name)
	}
	return nil
}

// Instance is a semistructured instance S = (V, E, ℓ, τ, val) per
// Definition 3.3: a rooted edge-labeled directed graph whose leaves may
// carry a type and a value.
//
// Deviation note: Definition 3.4 requires every leaf to carry a type and a
// value, but the paper's own algebra produces instances whose leaves have
// neither — Figure 4's ancestor projection leaves the author objects as
// untyped, valueless leaves. PXML therefore makes τ and val optional per
// leaf; semantics (compatibility, probabilities) apply the value conditions
// only to typed leaves.
type Instance struct {
	root  ObjectID
	g     *graph.Graph
	types map[TypeName]Type
	typ   map[ObjectID]TypeName
	val   map[ObjectID]Value
}

// NewInstance returns an instance containing only the given root object.
func NewInstance(root ObjectID) *Instance {
	s := &Instance{
		root:  root,
		g:     graph.New(),
		types: make(map[TypeName]Type),
		typ:   make(map[ObjectID]TypeName),
		val:   make(map[ObjectID]Value),
	}
	s.g.AddNode(root)
	return s
}

// Root returns the root object.
func (s *Instance) Root() ObjectID { return s.root }

// Graph returns the underlying graph. Callers must treat it as read-only;
// mutate instances through the Instance methods so type/value bookkeeping
// stays consistent.
func (s *Instance) Graph() *graph.Graph { return s.g }

// AddObject inserts an object with no edges.
func (s *Instance) AddObject(o ObjectID) { s.g.AddNode(o) }

// HasObject reports whether o is in the instance.
func (s *Instance) HasObject(o ObjectID) bool { return s.g.HasNode(o) }

// AddEdge inserts the labeled edge o → child.
func (s *Instance) AddEdge(o, child ObjectID, l Label) error {
	return s.g.AddEdge(o, child, l)
}

// RegisterType records a leaf type so objects can reference it by name.
// Re-registering the same name with a different domain is an error.
func (s *Instance) RegisterType(t Type) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if old, ok := s.types[t.Name]; ok {
		if !equalDomains(old.Domain, t.Domain) {
			return fmt.Errorf("model: type %q re-registered with different domain", t.Name)
		}
		return nil
	}
	s.types[t.Name] = t
	return nil
}

// SetLeaf assigns a type and value to an object. The type must be
// registered and the value must lie in its domain.
func (s *Instance) SetLeaf(o ObjectID, tn TypeName, v Value) error {
	t, ok := s.types[tn]
	if !ok {
		return fmt.Errorf("model: unknown type %q for object %s", tn, o)
	}
	if !t.Has(v) {
		return fmt.Errorf("model: value %q not in dom(%s) for object %s", v, tn, o)
	}
	s.g.AddNode(o)
	s.typ[o] = tn
	s.val[o] = v
	return nil
}

// TypeOf returns the type of o. The boolean result is false when o has no
// assigned type.
func (s *Instance) TypeOf(o ObjectID) (Type, bool) {
	tn, ok := s.typ[o]
	if !ok {
		return Type{}, false
	}
	return s.types[tn], true
}

// ValueOf returns val(o). The boolean result is false when o has no value.
func (s *Instance) ValueOf(o ObjectID) (Value, bool) {
	v, ok := s.val[o]
	return v, ok
}

// Objects returns all objects in sorted order.
func (s *Instance) Objects() []ObjectID { return s.g.Nodes() }

// NumObjects returns |V|.
func (s *Instance) NumObjects() int { return s.g.NumNodes() }

// Edges returns all edges sorted by (from, to).
func (s *Instance) Edges() []graph.Edge { return s.g.Edges() }

// Children returns C(o).
func (s *Instance) Children(o ObjectID) []ObjectID { return s.g.Children(o) }

// LCh returns lch(o, l).
func (s *Instance) LCh(o ObjectID, l Label) []ObjectID { return s.g.LCh(o, l) }

// IsLeaf reports whether o has no children in this instance.
func (s *Instance) IsLeaf(o ObjectID) bool { return s.g.IsLeaf(o) }

// Types returns the registered types keyed by name. Callers must not
// mutate the returned map.
func (s *Instance) Types() map[TypeName]Type { return s.types }

// Validate checks the structural invariants of Definition 3.3:
// the root exists and has no parents, every object is reachable from the
// root, values conform to their declared type domains, and only leaves
// carry values.
func (s *Instance) Validate() error {
	if !s.g.HasNode(s.root) {
		return fmt.Errorf("model: root %s missing", s.root)
	}
	if ps := s.g.Parents(s.root); len(ps) > 0 {
		return fmt.Errorf("model: root %s has parents %v", s.root, ps)
	}
	reach := make(map[ObjectID]bool)
	for _, o := range s.g.ReachableFrom(s.root) {
		reach[o] = true
	}
	for _, o := range s.g.Nodes() {
		if !reach[o] {
			return fmt.Errorf("model: object %s unreachable from root", o)
		}
	}
	for o, tn := range s.typ {
		t, ok := s.types[tn]
		if !ok {
			return fmt.Errorf("model: object %s has unregistered type %q", o, tn)
		}
		v, ok := s.val[o]
		if !ok {
			return fmt.Errorf("model: typed object %s has no value", o)
		}
		if !t.Has(v) {
			return fmt.Errorf("model: object %s has value %q outside dom(%s)", o, v, tn)
		}
		if !s.g.IsLeaf(o) {
			return fmt.Errorf("model: non-leaf object %s carries a leaf type", o)
		}
	}
	for o := range s.val {
		if _, ok := s.typ[o]; !ok {
			return fmt.Errorf("model: object %s has a value but no type", o)
		}
	}
	return nil
}

// Clone returns a deep copy of the instance.
func (s *Instance) Clone() *Instance {
	c := &Instance{
		root:  s.root,
		g:     s.g.Clone(),
		types: make(map[TypeName]Type, len(s.types)),
		typ:   make(map[ObjectID]TypeName, len(s.typ)),
		val:   make(map[ObjectID]Value, len(s.val)),
	}
	for k, v := range s.types {
		c.types[k] = v
	}
	for k, v := range s.typ {
		c.typ[k] = v
	}
	for k, v := range s.val {
		c.val[k] = v
	}
	return c
}

// CanonicalKey returns a string that uniquely identifies the instance up to
// semantic equality: same root, objects, labeled edges, and leaf
// type/value assignments. The algebra uses it to merge identical instances
// when combining probabilities (e.g. Definition 5.3).
func (s *Instance) CanonicalKey() string {
	var b strings.Builder
	b.WriteString("root=")
	b.WriteString(s.root)
	b.WriteString(";V=")
	for _, o := range s.g.Nodes() {
		b.WriteString(o)
		b.WriteByte(',')
	}
	b.WriteString(";E=")
	for _, e := range s.g.Edges() {
		b.WriteString(e.From)
		b.WriteByte('>')
		b.WriteString(e.To)
		b.WriteByte(':')
		b.WriteString(e.Label)
		b.WriteByte(',')
	}
	b.WriteString(";L=")
	leaves := make([]ObjectID, 0, len(s.typ))
	for o := range s.typ {
		leaves = append(leaves, o)
	}
	sort.Strings(leaves)
	for _, o := range leaves {
		b.WriteString(o)
		b.WriteByte(':')
		b.WriteString(s.typ[o])
		b.WriteByte('=')
		b.WriteString(s.val[o])
		b.WriteByte(',')
	}
	return b.String()
}

// Equal reports whether two instances are semantically identical.
func (s *Instance) Equal(t *Instance) bool {
	return s.CanonicalKey() == t.CanonicalKey()
}

// String renders the instance in a compact human-readable form, mainly for
// tests and debugging.
func (s *Instance) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instance root=%s objects=%d\n", s.root, s.NumObjects())
	for _, e := range s.Edges() {
		fmt.Fprintf(&b, "  %s -%s-> %s\n", e.From, e.Label, e.To)
	}
	leaves := make([]ObjectID, 0, len(s.val))
	for o := range s.val {
		leaves = append(leaves, o)
	}
	sort.Strings(leaves)
	for _, o := range leaves {
		fmt.Fprintf(&b, "  %s : %s = %s\n", o, s.typ[o], s.val[o])
	}
	return b.String()
}

func equalDomains(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package query

import (
	"pxml/internal/core"
	"pxml/internal/model"
)

// ExistenceMarginals computes, in one top-down pass over a tree-structured
// instance, the probability that each object occurs in a compatible
// instance: marg(root) = 1 and marg(child) = marg(parent) ·
// P(child ∈ c(parent)), the chain-probability factorization of Section 6.2
// applied to every object at once. It is the batch form of the paper's
// point query (and of the Section 2 "does this author exist?" scenario).
// DAG instances need per-object inference (bayes.Network.ProbExists)
// because an object's parents' choices are not independent events there.
func ExistenceMarginals(pi *core.ProbInstance) (map[model.ObjectID]float64, error) {
	if !pi.IsTree() {
		return nil, ErrNotTree
	}
	g := pi.WeakInstance.Graph()
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	marg := make(map[model.ObjectID]float64, len(order))
	marg[pi.Root()] = 1
	for _, o := range order {
		m, ok := marg[o]
		if !ok || m == 0 {
			continue
		}
		opf := pi.OPF(o)
		if opf == nil {
			continue
		}
		for _, c := range g.Children(o) {
			marg[c] = m * opf.ProbContains(c)
		}
	}
	return marg, nil
}

package query

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pxml/internal/core"
	"pxml/internal/enumerate"
	"pxml/internal/fixtures"
	"pxml/internal/model"
	"pxml/internal/pathexpr"
	"pxml/internal/prob"
	"pxml/internal/sets"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// chainTree builds a small tree with known chain probabilities.
func chainTree(t testing.TB) *core.ProbInstance {
	t.Helper()
	pi := core.NewProbInstance("r")
	if err := pi.RegisterType(model.NewType("bit", "0", "1")); err != nil {
		t.Fatal(err)
	}
	pi.SetLCh("r", "a", "x", "y")
	w := prob.NewOPF()
	w.Put(sets.NewSet("x"), 0.3)
	w.Put(sets.NewSet("y"), 0.2)
	w.Put(sets.NewSet("x", "y"), 0.4)
	w.Put(sets.NewSet(), 0.1)
	pi.SetOPF("r", w)

	pi.SetLCh("x", "b", "u")
	wx := prob.NewOPF()
	wx.Put(sets.NewSet("u"), 0.6)
	wx.Put(sets.NewSet(), 0.4)
	pi.SetOPF("x", wx)

	pi.SetLCh("y", "b", "v")
	wy := prob.NewOPF()
	wy.Put(sets.NewSet("v"), 0.5)
	wy.Put(sets.NewSet(), 0.5)
	pi.SetOPF("y", wy)

	for _, leaf := range []string{"u", "v"} {
		if err := pi.SetLeafType(leaf, "bit"); err != nil {
			t.Fatal(err)
		}
		vp := prob.NewVPF()
		vp.Put("0", 0.25)
		vp.Put("1", 0.75)
		pi.SetVPF(leaf, vp)
	}
	if err := pi.Validate(); err != nil {
		t.Fatal(err)
	}
	return pi
}

func TestChainProb(t *testing.T) {
	pi := chainTree(t)
	// P(x) = 0.7, P(u | x) = 0.6.
	p, err := ChainProb(pi, []string{"r", "x", "u"})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(p, 0.7*0.6) {
		t.Errorf("chain r.x.u = %v, want 0.42", p)
	}
	// Chain through a non-child is impossible.
	if p, _ := ChainProb(pi, []string{"r", "u"}); p != 0 {
		t.Errorf("impossible chain prob = %v", p)
	}
	// Chain beyond a leaf is impossible.
	if p, _ := ChainProb(pi, []string{"r", "x", "u", "z"}); p != 0 {
		t.Errorf("chain past leaf = %v", p)
	}
	// Root-only chain is certain.
	if p, _ := ChainProb(pi, []string{"r"}); p != 1 {
		t.Errorf("root chain = %v", p)
	}
	// Errors.
	if _, err := ChainProb(pi, nil); err == nil {
		t.Error("empty chain accepted")
	}
	if _, err := ChainProb(pi, []string{"x"}); err == nil {
		t.Error("non-root chain accepted")
	}
}

// TestChainProbDAG: the chain formula stays exact on DAG instances
// (Figure 2): P(R.B2.A1.I1) = P(B2|R)·P(A1|B2)·P(I1|A1).
func TestChainProbDAG(t *testing.T) {
	pi := fixtures.Figure2()
	p, err := ChainProb(pi, []string{"R", "B2", "A1", "I1"})
	if err != nil {
		t.Fatal(err)
	}
	// P(B2 ∈ c(R)) = 0.2+0.2+0.4, P(A1 ∈ c(B2)) = 0.4+0.4, P(I1|A1) = 0.8.
	want := 0.8 * 0.8 * 0.8
	if !approx(p, want) {
		t.Errorf("chain = %v, want %v", p, want)
	}
	// Oracle check.
	gi, err := enumerate.Enumerate(pi, 0)
	if err != nil {
		t.Fatal(err)
	}
	oracle := gi.ProbWhere(func(s *model.Instance) bool {
		return s.Graph().HasEdge("R", "B2") && s.Graph().HasEdge("B2", "A1") && s.Graph().HasEdge("A1", "I1")
	})
	if !approx(p, oracle) {
		t.Errorf("chain = %v, oracle = %v", p, oracle)
	}
}

func TestPointQuery(t *testing.T) {
	pi := chainTree(t)
	p, err := PointQuery(pi, pathexpr.MustParse("r.a.b"), "u")
	if err != nil {
		t.Fatal(err)
	}
	if !approx(p, 0.42) {
		t.Errorf("point query = %v, want 0.42", p)
	}
	// Point query for an object that does not satisfy the path.
	p, err = PointQuery(pi, pathexpr.MustParse("r.a"), "u")
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Errorf("mismatched point query = %v", p)
	}
	// Wrong root.
	if p, _ := PointQuery(pi, pathexpr.MustParse("z.a"), "x"); p != 0 {
		t.Errorf("wrong-root point query = %v", p)
	}
	// Bare-root path.
	if p, _ := PointQuery(pi, pathexpr.MustParse("r"), "r"); p != 1 {
		t.Errorf("root point query = %v", p)
	}
	if p, _ := PointQuery(pi, pathexpr.MustParse("r"), "x"); p != 0 {
		t.Errorf("root path, non-root object = %v", p)
	}
}

// TestPointQueryEqualsChainProb: in a tree the point query equals the chain
// probability of the unique root path.
func TestPointQueryEqualsChainProb(t *testing.T) {
	pi := chainTree(t)
	pq, err := PointQuery(pi, pathexpr.MustParse("r.a.b"), "v")
	if err != nil {
		t.Fatal(err)
	}
	cp, err := ChainProb(pi, []string{"r", "y", "v"})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(pq, cp) {
		t.Errorf("point %v != chain %v", pq, cp)
	}
}

func TestExistsQuery(t *testing.T) {
	pi := chainTree(t)
	// P(some object satisfies r.a.b) = 1 − P(no leaf reachable):
	// fail = Σ_c ω(r)(c) Π (1−ε); ε_x = 0.6, ε_y = 0.5.
	want := 1 - (0.1 + 0.3*0.4 + 0.2*0.5 + 0.4*0.4*0.5)
	p, err := ExistsQuery(pi, pathexpr.MustParse("r.a.b"))
	if err != nil {
		t.Fatal(err)
	}
	if !approx(p, want) {
		t.Errorf("exists = %v, want %v", p, want)
	}
	// Oracle check.
	gi, err := enumerate.Enumerate(pi, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := pathexpr.MustParse("r.a.b")
	oracle := gi.ProbWhere(func(s *model.Instance) bool {
		return len(path.Targets(s.Graph())) > 0
	})
	if !approx(p, oracle) {
		t.Errorf("exists = %v, oracle = %v", p, oracle)
	}
	// Unsatisfiable path.
	if p, _ := ExistsQuery(pi, pathexpr.MustParse("r.zz")); p != 0 {
		t.Errorf("unsatisfiable exists = %v", p)
	}
}

func TestValueQueries(t *testing.T) {
	pi := chainTree(t)
	path := pathexpr.MustParse("r.a.b")
	// P(∃ leaf on r.a.b with value "0").
	p, err := ValueExistsQuery(pi, path, "0")
	if err != nil {
		t.Fatal(err)
	}
	gi, err := enumerate.Enumerate(pi, 0)
	if err != nil {
		t.Fatal(err)
	}
	oracle := gi.ProbWhere(func(s *model.Instance) bool {
		for _, o := range path.Targets(s.Graph()) {
			if v, ok := s.ValueOf(o); ok && v == "0" {
				return true
			}
		}
		return false
	})
	if !approx(p, oracle) {
		t.Errorf("value exists = %v, oracle = %v", p, oracle)
	}

	// Specific leaf.
	pv, err := ValuePointQuery(pi, path, "u", "1")
	if err != nil {
		t.Fatal(err)
	}
	if !approx(pv, 0.42*0.75) {
		t.Errorf("value point = %v, want %v", pv, 0.42*0.75)
	}
	// Value absent from the domain.
	pv, err = ValueExistsQuery(pi, path, "nope")
	if err != nil {
		t.Fatal(err)
	}
	if pv != 0 {
		t.Errorf("impossible value exists = %v", pv)
	}
}

func TestQueriesRejectDAG(t *testing.T) {
	pi := fixtures.Figure2()
	if _, err := PointQuery(pi, pathexpr.MustParse("R.book"), "B1"); err != ErrNotTree {
		t.Fatalf("PointQuery err = %v", err)
	}
	if _, err := ExistsQuery(pi, pathexpr.MustParse("R.book")); err != ErrNotTree {
		t.Fatalf("ExistsQuery err = %v", err)
	}
	if _, err := ValueExistsQuery(pi, pathexpr.MustParse("R.book.title"), "Lore"); err != ErrNotTree {
		t.Fatalf("ValueExistsQuery err = %v", err)
	}
	if _, err := ValuePointQuery(pi, pathexpr.MustParse("R.book.title"), "T2", "Lore"); err != ErrNotTree {
		t.Fatalf("ValuePointQuery err = %v", err)
	}
}

// TestQuickPointQueryMatchesOracle: point queries on random trees agree
// with enumeration.
func TestQuickPointQueryMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pi := fixtures.RandomTree(r)
		if pi.NumObjects() > 12 {
			return true
		}
		objs := pi.Objects()
		o := objs[r.Intn(len(objs))]
		p := rootPath(pi, o)
		got, err := PointQuery(pi, p, o)
		if err != nil {
			return false
		}
		gi, err := enumerate.Enumerate(pi, 0)
		if err != nil {
			return false
		}
		want := gi.ProbWhere(func(s *model.Instance) bool { return p.Matches(s.Graph(), o) })
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickExistsQueryMatchesOracle: existence queries on random trees and
// random paths agree with enumeration.
func TestQuickExistsQueryMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pi := fixtures.RandomTree(r)
		if pi.NumObjects() > 12 {
			return true
		}
		labels := []string{"a", "b", "zz"}
		p := pathexpr.Path{Root: pi.Root()}
		for i := 0; i < 1+r.Intn(3); i++ {
			p.Labels = append(p.Labels, labels[r.Intn(len(labels))])
		}
		got, err := ExistsQuery(pi, p)
		if err != nil {
			return false
		}
		gi, err := enumerate.Enumerate(pi, 0)
		if err != nil {
			return false
		}
		want := gi.ProbWhere(func(s *model.Instance) bool { return len(p.Targets(s.Graph())) > 0 })
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickValueExistsMatchesOracle: value-existence queries agree with
// enumeration.
func TestQuickValueExistsMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pi := fixtures.RandomInstance(r, fixtures.RandomConfig{
			MaxDepth: 1 + r.Intn(2), MaxChildren: 1 + r.Intn(3), LeafDomain: 2,
		})
		if pi.NumObjects() > 10 {
			return true
		}
		labels := []string{"a", "b"}
		p := pathexpr.Path{Root: pi.Root()}
		for i := 0; i < 1+r.Intn(2); i++ {
			p.Labels = append(p.Labels, labels[r.Intn(len(labels))])
		}
		got, err := ValueExistsQuery(pi, p, "v0")
		if err != nil {
			return false
		}
		gi, err := enumerate.Enumerate(pi, 0)
		if err != nil {
			return false
		}
		want := gi.ProbWhere(func(s *model.Instance) bool {
			for _, o := range p.Targets(s.Graph()) {
				if v, ok := s.ValueOf(o); ok && v == "v0" {
					return true
				}
			}
			return false
		})
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

// rootPath returns the label path from the root to o in a tree.
func rootPath(pi *core.ProbInstance, o model.ObjectID) pathexpr.Path {
	g := pi.WeakInstance.Graph()
	var labels []model.Label
	cur := o
	for cur != pi.Root() {
		ps := g.Parents(cur)
		if len(ps) == 0 {
			break
		}
		l, _ := g.Label(ps[0], cur)
		labels = append([]model.Label{l}, labels...)
		cur = ps[0]
	}
	return pathexpr.Path{Root: pi.Root(), Labels: labels}
}

// TestCountDistributionChainTree: exact match-count distribution on the
// small chain tree, cross-checked against enumeration.
func TestCountDistributionChainTree(t *testing.T) {
	pi := chainTree(t)
	p := pathexpr.MustParse("r.a.b")
	d, err := CountDistribution(pi, p)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, pr := range d {
		total += pr
	}
	if !approx(total, 1) {
		t.Errorf("count distribution mass = %v", total)
	}
	gi, err := enumerate.Enumerate(pi, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 3; k++ {
		want := gi.ProbWhere(func(s *model.Instance) bool {
			return len(p.Targets(s.Graph())) == k
		})
		if !approx(d[k], want) {
			t.Errorf("P(count=%d) = %v, oracle %v", k, d[k], want)
		}
	}
	// Expectation agrees with the sum of point-query marginals.
	e, err := ExpectedCount(pi, p)
	if err != nil {
		t.Fatal(err)
	}
	pu, _ := PointQuery(pi, p, "u")
	pv, _ := PointQuery(pi, p, "v")
	if !approx(e, pu+pv) {
		t.Errorf("E[count] = %v, want %v", e, pu+pv)
	}
}

func TestCountDistributionEdgeCases(t *testing.T) {
	pi := chainTree(t)
	// No match.
	d, err := CountDistribution(pi, pathexpr.MustParse("r.zz"))
	if err != nil || !approx(d[0], 1) {
		t.Errorf("no-match distribution = %v err=%v", d, err)
	}
	// Bare root.
	d, err = CountDistribution(pi, pathexpr.MustParse("r"))
	if err != nil || !approx(d[1], 1) {
		t.Errorf("root distribution = %v err=%v", d, err)
	}
	// Wrong root.
	d, err = CountDistribution(pi, pathexpr.MustParse("z.a"))
	if err != nil || !approx(d[0], 1) {
		t.Errorf("wrong-root distribution = %v err=%v", d, err)
	}
	// DAG rejected.
	if _, err := CountDistribution(fixtures.Figure2(), pathexpr.MustParse("R.book")); err != ErrNotTree {
		t.Errorf("DAG err = %v", err)
	}
}

// TestQuickCountDistributionMatchesOracle: the count distribution agrees
// with enumeration on random trees and random paths.
func TestQuickCountDistributionMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pi := fixtures.RandomTree(r)
		if pi.NumObjects() > 12 {
			return true
		}
		labels := []string{"a", "b"}
		p := pathexpr.Path{Root: pi.Root()}
		for i := 0; i < 1+r.Intn(3); i++ {
			p.Labels = append(p.Labels, labels[r.Intn(len(labels))])
		}
		d, err := CountDistribution(pi, p)
		if err != nil {
			return false
		}
		gi, err := enumerate.Enumerate(pi, 0)
		if err != nil {
			return false
		}
		// Compare every count value that appears on either side.
		maxK := 0
		for k := range d {
			if k > maxK {
				maxK = k
			}
		}
		for k := 0; k <= maxK+1; k++ {
			want := gi.ProbWhere(func(s *model.Instance) bool {
				return len(p.Targets(s.Graph())) == k
			})
			if math.Abs(d[k]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

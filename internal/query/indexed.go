package query

import (
	"pxml/internal/core"
	"pxml/internal/model"
	"pxml/internal/pathexpr"
)

// The *Indexed variants below answer the same Section 6.2 queries as their
// namesakes but build the path plan through a prebuilt pathexpr.Index, so
// only the edges of the queried labels are touched. They are the amortized
// route for callers (the engine package) that run many queries against one
// immutable instance.
//
// Precondition: the instance's weak graph must be a tree. The caller is
// expected to have verified that once (and cached the answer); the
// variants do not repeat the O(V+E) check that dominates small queries.

// PointQueryIndexed is PointQuery through a prebuilt index.
func PointQueryIndexed(pi *core.ProbInstance, idx *pathexpr.Index, p pathexpr.Path, o model.ObjectID) (float64, error) {
	return epsilonRoot(pi, idx, p, map[model.ObjectID]bool{o: true}, nil)
}

// ExistsQueryIndexed is ExistsQuery through a prebuilt index.
func ExistsQueryIndexed(pi *core.ProbInstance, idx *pathexpr.Index, p pathexpr.Path) (float64, error) {
	return epsilonRoot(pi, idx, p, nil, nil)
}

// ValueExistsQueryIndexed is ValueExistsQuery through a prebuilt index.
func ValueExistsQueryIndexed(pi *core.ProbInstance, idx *pathexpr.Index, p pathexpr.Path, v model.Value) (float64, error) {
	success := func(o model.ObjectID) float64 {
		if vpf := pi.VPF(o); vpf != nil {
			return vpf.Prob(v)
		}
		return 0
	}
	return epsilonRoot(pi, idx, p, nil, success)
}

// ValuePointQueryIndexed is ValuePointQuery through a prebuilt index.
func ValuePointQueryIndexed(pi *core.ProbInstance, idx *pathexpr.Index, p pathexpr.Path, o model.ObjectID, v model.Value) (float64, error) {
	success := func(m model.ObjectID) float64 {
		if vpf := pi.VPF(m); vpf != nil {
			return vpf.Prob(v)
		}
		return 0
	}
	return epsilonRoot(pi, idx, p, map[model.ObjectID]bool{o: true}, success)
}

package query

import (
	"context"

	"pxml/internal/core"
	"pxml/internal/govern"
	"pxml/internal/model"
	"pxml/internal/pathexpr"
)

// The *Indexed variants below answer the same Section 6.2 queries as their
// namesakes but build the path plan through a prebuilt pathexpr.Index, so
// only the edges of the queried labels are touched. They are the amortized
// route for callers (the engine package) that run many queries against one
// immutable instance.
//
// The *IndexedCtx variants additionally honour a context-carried
// resource governor (govern.From): the ε recursion charges its OPF
// scans against the query's step budget and polls cancellation at each
// kept object. The plain variants delegate with context.Background().
//
// Precondition: the instance's weak graph must be a tree. The caller is
// expected to have verified that once (and cached the answer); the
// variants do not repeat the O(V+E) check that dominates small queries.

// PointQueryIndexed is PointQuery through a prebuilt index.
func PointQueryIndexed(pi *core.ProbInstance, idx *pathexpr.Index, p pathexpr.Path, o model.ObjectID) (float64, error) {
	return PointQueryIndexedCtx(context.Background(), pi, idx, p, o)
}

// PointQueryIndexedCtx is PointQueryIndexed under ctx's governor.
func PointQueryIndexedCtx(ctx context.Context, pi *core.ProbInstance, idx *pathexpr.Index, p pathexpr.Path, o model.ObjectID) (float64, error) {
	return epsilonRoot(pi, idx, p, map[model.ObjectID]bool{o: true}, nil, govern.From(ctx))
}

// ExistsQueryIndexed is ExistsQuery through a prebuilt index.
func ExistsQueryIndexed(pi *core.ProbInstance, idx *pathexpr.Index, p pathexpr.Path) (float64, error) {
	return ExistsQueryIndexedCtx(context.Background(), pi, idx, p)
}

// ExistsQueryIndexedCtx is ExistsQueryIndexed under ctx's governor.
func ExistsQueryIndexedCtx(ctx context.Context, pi *core.ProbInstance, idx *pathexpr.Index, p pathexpr.Path) (float64, error) {
	return epsilonRoot(pi, idx, p, nil, nil, govern.From(ctx))
}

// ValueExistsQueryIndexed is ValueExistsQuery through a prebuilt index.
func ValueExistsQueryIndexed(pi *core.ProbInstance, idx *pathexpr.Index, p pathexpr.Path, v model.Value) (float64, error) {
	return ValueExistsQueryIndexedCtx(context.Background(), pi, idx, p, v)
}

// ValueExistsQueryIndexedCtx is ValueExistsQueryIndexed under ctx's governor.
func ValueExistsQueryIndexedCtx(ctx context.Context, pi *core.ProbInstance, idx *pathexpr.Index, p pathexpr.Path, v model.Value) (float64, error) {
	success := func(o model.ObjectID) float64 {
		if vpf := pi.VPF(o); vpf != nil {
			return vpf.Prob(v)
		}
		return 0
	}
	return epsilonRoot(pi, idx, p, nil, success, govern.From(ctx))
}

// ValuePointQueryIndexed is ValuePointQuery through a prebuilt index.
func ValuePointQueryIndexed(pi *core.ProbInstance, idx *pathexpr.Index, p pathexpr.Path, o model.ObjectID, v model.Value) (float64, error) {
	return ValuePointQueryIndexedCtx(context.Background(), pi, idx, p, o, v)
}

// ValuePointQueryIndexedCtx is ValuePointQueryIndexed under ctx's governor.
func ValuePointQueryIndexedCtx(ctx context.Context, pi *core.ProbInstance, idx *pathexpr.Index, p pathexpr.Path, o model.ObjectID, v model.Value) (float64, error) {
	success := func(m model.ObjectID) float64 {
		if vpf := pi.VPF(m); vpf != nil {
			return vpf.Prob(v)
		}
		return 0
	}
	return epsilonRoot(pi, idx, p, map[model.ObjectID]bool{o: true}, success, govern.From(ctx))
}

// Package query implements the probabilistic queries of Section 6.2 of the
// PXML paper: the probability of a simple object chain, probabilistic point
// queries ("what is the probability that object o satisfies path expression
// p?", Definition 6.1) and their extension to existence queries ("what is
// the probability that some object satisfies p?"), plus value-existence
// queries combining a path with a leaf value.
//
// The fast algorithms assume a tree-structured weak instance graph, exactly
// as Section 6 does. For DAG instances use the bayes package (exact
// variable-elimination inference) or the enumeration oracle.
package query

import (
	"fmt"

	"pxml/internal/algebra"
	"pxml/internal/core"
	"pxml/internal/govern"
	"pxml/internal/graph"
	"pxml/internal/model"
	"pxml/internal/pathexpr"
)

// ErrNotTree is returned by the query fast paths on non-tree instances;
// it is the same sentinel the algebra fast paths use, so callers can check
// a single error value. Use bayes.PathProb or enumeration for DAGs.
var ErrNotTree = algebra.ErrNotTree

// ChainProb computes the probability of a simple object chain
// c = r.o₁.o₂…oᵢ per the Section 6.2 formula: the product over the chain of
// P(oₖ₊₁ ∈ c(oₖ)) — each factor conditional on the parent's existence, so
// the product telescopes into the chain probability. Unlike the other
// queries this is exact on DAGs too: a chain is a single path, and each
// object's child-set choice is independent of how the object was reached.
func ChainProb(pi *core.ProbInstance, chain []model.ObjectID) (float64, error) {
	if len(chain) == 0 {
		return 0, fmt.Errorf("query: empty chain")
	}
	if chain[0] != pi.Root() {
		return 0, fmt.Errorf("query: chain must start at the root %s, got %s", pi.Root(), chain[0])
	}
	p := 1.0
	for i := 0; i+1 < len(chain); i++ {
		opf := pi.OPF(chain[i])
		if opf == nil {
			return 0, nil // a leaf has no children: the chain is impossible
		}
		if _, ok := pi.LabelOf(chain[i], chain[i+1]); !ok {
			return 0, nil
		}
		p *= opf.ProbContains(chain[i+1])
		if p == 0 {
			return 0, nil
		}
	}
	return p, nil
}

// PointQuery computes the Definition 6.1 probabilistic point query: the
// probability that object o satisfies path expression p in a compatible
// instance. Per Section 6.2 it extracts o and its path ancestors and
// evaluates ε_r over that restriction; in a tree that restriction is the
// unique root chain of o.
func PointQuery(pi *core.ProbInstance, p pathexpr.Path, o model.ObjectID) (float64, error) {
	if !pi.IsTree() {
		return 0, ErrNotTree
	}
	return epsilonRoot(pi, nil, p, map[model.ObjectID]bool{o: true}, nil, nil)
}

// ExistsQuery computes the extension the paper describes at the end of
// Section 6.2: the probability that some object satisfies p. It keeps all
// objects satisfying the path expression together with their path
// ancestors and computes ε_r bottom-up.
func ExistsQuery(pi *core.ProbInstance, p pathexpr.Path) (float64, error) {
	if !pi.IsTree() {
		return 0, ErrNotTree
	}
	return epsilonRoot(pi, nil, p, nil, nil, nil)
}

// ValueExistsQuery computes the probability that some leaf satisfying p
// carries value v — the probabilistic reading of the value selection
// condition val(p) = v. Matched leaves succeed with probability VPF(v);
// matched non-leaves or unvalued leaves never do.
func ValueExistsQuery(pi *core.ProbInstance, p pathexpr.Path, v model.Value) (float64, error) {
	if !pi.IsTree() {
		return 0, ErrNotTree
	}
	success := func(o model.ObjectID) float64 {
		if vpf := pi.VPF(o); vpf != nil {
			return vpf.Prob(v)
		}
		return 0
	}
	return epsilonRoot(pi, nil, p, nil, success, nil)
}

// ValuePointQuery computes P(o ∈ p ∧ val(o) = v) for a specific leaf o.
func ValuePointQuery(pi *core.ProbInstance, p pathexpr.Path, o model.ObjectID, v model.Value) (float64, error) {
	if !pi.IsTree() {
		return 0, ErrNotTree
	}
	success := func(m model.ObjectID) float64 {
		if vpf := pi.VPF(m); vpf != nil {
			return vpf.Prob(v)
		}
		return 0
	}
	return epsilonRoot(pi, nil, p, map[model.ObjectID]bool{o: true}, success, nil)
}

// epsilonRoot runs the ε recursion of Section 6.1/6.2 over the plan of p
// restricted to targets (nil = all matches): bottom-up,
//
//	ε_o = 1 − Σ_c ω(o)(c) · Π_{j ∈ c ∩ kept} (1 − ε_j)
//
// with matched objects assigned success probability 1 (or success(o) when a
// success function is supplied, e.g. a VPF lookup for value queries). ε_r
// is the probability that a compatible instance contains a successful
// match. When idx is non-nil the plan is built through the label index
// (touching only same-label edges) instead of the full graph. A non-nil
// governor is charged one work unit per OPF entry scanned, so wide-OPF
// instances hit their step budget (or observe cancellation) within one
// kept object instead of finishing the full bottom-up pass.
func epsilonRoot(pi *core.ProbInstance, idx *pathexpr.Index, p pathexpr.Path, targets map[model.ObjectID]bool, success func(model.ObjectID) float64, gov *govern.Governor) (float64, error) {
	if p.Root != pi.Root() {
		return 0, nil
	}
	if p.Len() == 0 {
		// The bare root always satisfies its own path expression; for
		// value queries the root has no value, so success is 0.
		if success != nil {
			return success(pi.Root()), nil
		}
		if targets != nil && !targets[pi.Root()] {
			return 0, nil
		}
		return 1, nil
	}
	var plan pathexpr.Plan
	if idx != nil {
		plan = pathexpr.NewPlanIndexed(idx, p, targets)
	} else {
		plan = pathexpr.NewPlan(pi.WeakInstance.Graph(), p, targets)
	}
	if plan.IsEmpty() {
		return 0, nil
	}
	keptChildren := groupPlanChildren(plan.Edges)
	eps := make(map[model.ObjectID]float64, planSize(plan))
	n := p.Len()
	for o := range plan.Keep[n] {
		if success != nil {
			eps[o] = success(o)
		} else {
			eps[o] = 1
		}
	}
	matched := plan.Keep[n]
	for level := n - 1; level >= 0; level-- {
		for o := range plan.Keep[level] {
			if matched[o] {
				continue // cannot happen in a tree; keep ε from the match
			}
			opf := pi.OPF(o)
			if opf == nil {
				return 0, fmt.Errorf("query: non-leaf %s has no OPF", o)
			}
			if err := gov.Step(int64(opf.Len())); err != nil {
				return 0, err
			}
			kept := keptChildren[o]
			fail := 0.0
			for _, e := range opf.Entries() {
				if e.Prob <= 0 {
					continue
				}
				f := e.Prob
				for _, j := range kept {
					if e.Set.Contains(j) {
						f *= 1 - eps[j]
					}
				}
				fail += f
			}
			eps[o] = 1 - fail
		}
	}
	e, ok := eps[pi.Root()]
	if !ok {
		return 0, nil
	}
	// Clamp tiny negative residue from floating-point cancellation.
	if e < 0 {
		e = 0
	}
	return e, nil
}

// groupPlanChildren groups a plan's kept edges by parent, carving every
// per-parent slice out of one shared backing array: a counting pass sizes
// each group, a placement pass fills it. The append-per-edge pattern this
// replaces reallocated each parent's slice O(log fan-out) times, which
// dominated the ε recursion's allocation profile on wide instances.
func groupPlanChildren(edges []graph.Edge) map[model.ObjectID][]model.ObjectID {
	counts := make(map[model.ObjectID]int, len(edges))
	for _, e := range edges {
		counts[e.From]++
	}
	backing := make([]model.ObjectID, 0, len(edges))
	out := make(map[model.ObjectID][]model.ObjectID, len(counts))
	for _, e := range edges {
		s, ok := out[e.From]
		if !ok {
			n := counts[e.From]
			s = backing[len(backing) : len(backing) : len(backing)+n]
			backing = backing[:len(backing)+n]
		}
		out[e.From] = append(s, e.To)
	}
	return out
}

// planSize counts the kept objects across all plan levels (an upper bound
// on how many ε values the recursion stores).
func planSize(plan pathexpr.Plan) int {
	n := 0
	for _, level := range plan.Keep {
		n += len(level)
	}
	return n
}

package query

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pxml/internal/enumerate"
	"pxml/internal/fixtures"
	"pxml/internal/model"
)

func TestExistenceMarginalsChainTree(t *testing.T) {
	pi := chainTree(t)
	marg, err := ExistenceMarginals(pi)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"r": 1, "x": 0.7, "y": 0.6,
		"u": 0.7 * 0.6, "v": 0.6 * 0.5,
	}
	for o, w := range want {
		if math.Abs(marg[o]-w) > 1e-9 {
			t.Errorf("marg(%s) = %v, want %v", o, marg[o], w)
		}
	}
}

func TestExistenceMarginalsRejectsDAG(t *testing.T) {
	if _, err := ExistenceMarginals(fixtures.Figure2()); err != ErrNotTree {
		t.Fatalf("err = %v, want ErrNotTree", err)
	}
}

// TestQuickExistenceMarginalsMatchOracle: the one-pass marginals equal the
// brute-force per-object existence probabilities on random trees.
func TestQuickExistenceMarginalsMatchOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pi := fixtures.RandomTree(r)
		if pi.NumObjects() > 12 {
			return true
		}
		marg, err := ExistenceMarginals(pi)
		if err != nil {
			return false
		}
		gi, err := enumerate.Enumerate(pi, 0)
		if err != nil {
			return false
		}
		for _, o := range pi.Objects() {
			want := gi.ProbWhere(func(s *model.Instance) bool { return s.HasObject(o) })
			if math.Abs(marg[o]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

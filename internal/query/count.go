package query

import (
	"context"
	"fmt"

	"pxml/internal/core"
	"pxml/internal/govern"
	"pxml/internal/model"
	"pxml/internal/pathexpr"
)

// CountDistribution computes the exact probability distribution of
// |{o : o ∈ p}| — how many objects satisfy the path expression in a
// possible world — on a tree-structured instance. It is the aggregate
// counterpart of the existence query: a bottom-up convolution over the
// projection plan, polynomial in the number of matched objects (each
// node's distribution has at most #matched+1 entries).
//
// The result maps counts to probabilities and always sums to one (count 0
// collects the no-match worlds).
func CountDistribution(pi *core.ProbInstance, p pathexpr.Path) (map[int]float64, error) {
	return CountDistributionCtx(context.Background(), pi, p)
}

// CountDistributionCtx is CountDistribution under a context-carried
// resource governor: each convolution product is charged against the
// step budget before it is computed, so a wide plan stops within one
// OPF entry of exhausting its budget or being cancelled.
func CountDistributionCtx(ctx context.Context, pi *core.ProbInstance, p pathexpr.Path) (map[int]float64, error) {
	gov := govern.From(ctx)
	if !pi.IsTree() {
		return nil, ErrNotTree
	}
	if p.Root != pi.Root() {
		return map[int]float64{0: 1}, nil
	}
	if p.Len() == 0 {
		return map[int]float64{1: 1}, nil // the root always matches itself
	}
	g := pi.WeakInstance.Graph()
	plan := pathexpr.NewPlan(g, p, nil)
	if plan.IsEmpty() {
		return map[int]float64{0: 1}, nil
	}
	keptChildren := groupPlanChildren(plan.Edges)
	// dist[o] is the distribution of the number of matches in o's kept
	// subtree given o exists.
	dist := make(map[model.ObjectID]map[int]float64, planSize(plan))
	n := p.Len()
	for o := range plan.Keep[n] {
		dist[o] = map[int]float64{1: 1}
	}
	matched := plan.Keep[n]
	for level := n - 1; level >= 0; level-- {
		for o := range plan.Keep[level] {
			if matched[o] {
				continue
			}
			opf := pi.OPF(o)
			if opf == nil {
				return nil, fmt.Errorf("query: non-leaf %s has no OPF", o)
			}
			kept := keptChildren[o]
			out := map[int]float64{}
			for _, e := range opf.Entries() {
				if e.Prob <= 0 {
					continue
				}
				if err := gov.Step(1); err != nil {
					return nil, err
				}
				// Convolve the kept children present in this child set.
				acc := map[int]float64{0: e.Prob}
				for _, j := range kept {
					if !e.Set.Contains(j) {
						continue
					}
					dj := dist[j]
					if err := gov.Step(int64(len(acc) * len(dj))); err != nil {
						return nil, err
					}
					next := make(map[int]float64, len(acc)*len(dj))
					for a, pa := range acc {
						for b, pb := range dj {
							next[a+b] += pa * pb
						}
					}
					acc = next
				}
				for k, v := range acc {
					out[k] += v
				}
			}
			dist[o] = out
		}
	}
	root := dist[pi.Root()]
	if root == nil {
		return map[int]float64{0: 1}, nil
	}
	return root, nil
}

// ExpectedCount returns E[|{o : o ∈ p}|] on a tree-structured instance.
// By linearity of expectation it equals the sum of the per-match chain
// probabilities, which the implementation cross-checks cheaply against the
// full distribution.
func ExpectedCount(pi *core.ProbInstance, p pathexpr.Path) (float64, error) {
	d, err := CountDistribution(pi, p)
	if err != nil {
		return 0, err
	}
	e := 0.0
	for k, pr := range d {
		e += float64(k) * pr
	}
	return e, nil
}

package engine

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"time"

	"pxml/internal/algebra"
	"pxml/internal/enumerate"
	"pxml/internal/govern"
	"pxml/internal/model"
	"pxml/internal/pathexpr"
	"pxml/internal/pxql"
)

// BatchResult pairs one statement of a batch with its outcome.
type BatchResult struct {
	Result *pxql.Result
	Err    error
}

// acquire takes a worker-pool slot, or reports the context error if the
// caller is cancelled first.
func (e *Engine) acquire(ctx context.Context) error {
	select {
	case e.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (e *Engine) release() { <-e.sem }

// RunBatch evaluates independent statements concurrently over the bounded
// worker pool, returning one BatchResult per statement in input order.
// Statements queued behind a full pool observe cancellation while waiting.
func (e *Engine) RunBatch(ctx context.Context, statements []string) []BatchResult {
	out := make([]BatchResult, len(statements))
	// Warm the shared structures once up front so concurrent statements
	// don't all count a miss racing the same builder.
	if err := e.Warm(ctx); err != nil && ctx.Err() != nil {
		for i := range out {
			out[i] = BatchResult{Err: ctx.Err()}
		}
		return out
	}
	var wg sync.WaitGroup
	for i, stmt := range statements {
		wg.Add(1)
		go func(i int, stmt string) {
			defer wg.Done()
			if err := e.acquire(ctx); err != nil {
				out[i] = BatchResult{Err: err}
				return
			}
			defer e.release()
			// acquire's select can win the slot even when ctx is already
			// done; re-check so a cancelled batch stops draining the queue
			// into fresh evaluations.
			if err := ctx.Err(); err != nil {
				out[i] = BatchResult{Err: err}
				return
			}
			res, err := e.Run(ctx, stmt)
			out[i] = BatchResult{Result: res, Err: err}
		}(i, stmt)
	}
	wg.Wait()
	return out
}

// BatchPoint answers the point queries P(o ∈ p) for many objects
// concurrently, returning probabilities in input order. The first error
// aborts the remaining queries (cancellation errors take precedence so
// callers see the timeout, not a downstream symptom).
func (e *Engine) BatchPoint(ctx context.Context, p pathexpr.Path, objects []model.ObjectID) (probs []float64, err error) {
	start := time.Now()
	e.queries.Add(int64(len(objects)))
	defer func() { e.finish(start, err) }()
	defer e.observeShape(pxql.ShapeBatch, start)
	if err = e.Warm(ctx); err != nil {
		return nil, err
	}
	probs = make([]float64, len(objects))
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i, o := range objects {
		wg.Add(1)
		go func(i int, o model.ObjectID) {
			defer wg.Done()
			if aerr := e.acquire(ctx); aerr != nil {
				return // cancelled while queued; firstErr already set or ctx expired
			}
			defer e.release()
			if ctx.Err() != nil {
				return // won the slot racing cancellation; don't start work
			}
			// Each point gets its own governor (per-point budget) and its
			// own panic containment, so one pathological object neither
			// exhausts the whole batch's budget nor takes down its workers.
			pr, qerr := func() (pr float64, qerr error) {
				pctx, g, pcancel := e.governed(ctx)
				defer pcancel()
				if qerr = e.admit("prob-point", 0, g); qerr != nil {
					return 0, qerr
				}
				defer recoverQueryPanic(&qerr)
				return e.pointProb(pctx, p, o)
			}()
			if qerr != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = qerr
				}
				mu.Unlock()
				cancel()
				return
			}
			probs[i] = pr
		}(i, o)
	}
	wg.Wait()
	if firstErr == nil {
		// Our own cancel fires only after firstErr is set, so a bare
		// context error here is the caller's cancellation.
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return probs, nil
}

// estimateShards fixes how a Monte-Carlo estimate splits across the pool.
// A constant (independent of the worker bound) keeps the sharded seed
// sequence — and therefore the estimate — deterministic on any machine.
const estimateShards = 8

// estimate runs the ESTIMATE statement's forward sampling sharded over the
// worker pool: shard i draws its samples from a deterministic per-shard
// seed, and the shard hit counts combine exactly. The estimate differs
// from the sequential single-stream one only in which (deterministic)
// pseudo-random worlds are drawn.
func (e *Engine) estimate(ctx context.Context, op string, p pathexpr.Path, o model.ObjectID, n int) (enumerate.Estimate, error) {
	if n < estimateShards {
		// Too small to be worth fanning out; match the direct backend.
		r := rand.New(rand.NewSource(1))
		return enumerate.EstimateProbCtx(ctx, e.pi, pxql.EstimatePred(op, p, o), n, r)
	}
	pred := pxql.EstimatePred(op, p, o)
	// The shards share the statement's governor: the step budget bounds
	// the total sample work regardless of how it is split.
	gov := govern.From(ctx)
	perSample := int64(e.pi.NumObjects())
	if perSample < 1 {
		perSample = 1
	}
	per := n / estimateShards
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		hits     int
		firstErr error
	)
	for shard := 0; shard < estimateShards; shard++ {
		cnt := per
		if shard == 0 {
			cnt += n % estimateShards
		}
		wg.Add(1)
		go func(shard, cnt int) {
			defer wg.Done()
			if err := e.acquire(ctx); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			defer e.release()
			if err := ctx.Err(); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			r := rand.New(rand.NewSource(1 + int64(shard)))
			h := 0
			for i := 0; i < cnt; i++ {
				if err := gov.Step(perSample); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				if gov == nil && i&63 == 0 {
					if err := ctx.Err(); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
				}
				s, err := enumerate.Sample(e.pi, r)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				if pred(s) {
					h++
				}
			}
			mu.Lock()
			hits += h
			mu.Unlock()
		}(shard, cnt)
	}
	wg.Wait()
	if firstErr != nil {
		return enumerate.Estimate{}, firstErr
	}
	pr := float64(hits) / float64(n)
	return enumerate.Estimate{
		P:       pr,
		StdErr:  math.Sqrt(pr * (1 - pr) / float64(n)),
		Samples: n,
	}, nil
}

// warmPair warms two engines' cached structures concurrently — the
// independent per-operand analysis preceding a binary operator.
func warmPair(ctx context.Context, a, b *Engine) error {
	var wg sync.WaitGroup
	var aerr, berr error
	wg.Add(2)
	go func() { defer wg.Done(); aerr = a.Warm(ctx) }()
	go func() { defer wg.Done(); berr = b.Warm(ctx) }()
	wg.Wait()
	if aerr != nil {
		return aerr
	}
	return berr
}

// Product computes the Cartesian product of the two engines' instances
// (Definition 5.7), preparing both operands' support structures
// concurrently, and wraps the product in a fresh engine. The rename map
// records identifier renames applied to the second operand.
func Product(ctx context.Context, a, b *Engine, newRoot model.ObjectID) (*Engine, map[model.ObjectID]model.ObjectID, error) {
	if err := warmPair(ctx, a, b); err != nil {
		return nil, nil, err
	}
	out, renames, err := algebra.CartesianProduct(a.pi, b.pi, newRoot)
	if err != nil {
		return nil, nil, err
	}
	return New(out, WithWorkers(cap(a.sem)), WithBudget(a.budget)), renames, nil
}

// Join computes σ_cond(a × b), the paper's join, preparing both operands
// concurrently like Product, and wraps the joined instance in a fresh
// engine alongside the algebra result.
func Join(ctx context.Context, a, b *Engine, newRoot model.ObjectID, cond algebra.Condition) (*Engine, *algebra.JoinResult, error) {
	if err := warmPair(ctx, a, b); err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	res, err := algebra.Join(a.pi, b.pi, newRoot, cond)
	if err != nil {
		return nil, nil, err
	}
	return New(res.Instance, WithWorkers(cap(a.sem)), WithBudget(a.budget)), res, nil
}

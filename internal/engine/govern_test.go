package engine

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"pxml/internal/bayes"
	"pxml/internal/core"
	"pxml/internal/gen"
	"pxml/internal/govern"
	"pxml/internal/model"
	"pxml/internal/pathexpr"
	"pxml/internal/prob"
	"pxml/internal/sets"
)

// widthBombEngine wraps an adversarial diamond DAG whose compiled BN
// would need ~2·(2^12+1)^6 CPT cells — far beyond any machine.
func widthBombEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	pi, err := gen.WidthBomb(gen.BombConfig{Width: 12, Parents: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return New(pi, opts...)
}

// heapAllocNow reports the live heap after a GC, so growth comparisons
// measure retained allocations rather than garbage.
func heapAllocNow() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// TestAdmissionRefusesWidthBomb: with a budget configured, the upfront
// estimator refuses the bomb as intractable before allocating anything —
// the peak heap stays bounded by the instance itself, not its 10^22-cell
// predicted inference cost.
func TestAdmissionRefusesWidthBomb(t *testing.T) {
	eng := widthBombEngine(t, WithBudget(govern.Budget{MaxSteps: 1 << 20, MaxBytes: 64 << 20}))
	before := heapAllocNow()
	start := time.Now()
	_, err := eng.Run(context.Background(), "PROB OBJECT leaf0")
	if !errors.Is(err, govern.ErrIntractable) {
		t.Fatalf("err = %v, want ErrIntractable", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("refusal took %v, want sub-second (admission must not build anything)", d)
	}
	if after := heapAllocNow(); after > before+(64<<20) {
		t.Fatalf("heap grew %d bytes evaluating a refused query", after-before)
	}
}

// TestHardCapRefusesWidthBombUngoverned: even with no budget configured,
// the factor-size hard cap stops the bomb inside the compile with a typed
// error instead of attempting the allocation.
func TestHardCapRefusesWidthBombUngoverned(t *testing.T) {
	eng := widthBombEngine(t)
	before := heapAllocNow()
	_, err := eng.Run(context.Background(), "PROB OBJECT leaf0")
	if !errors.Is(err, govern.ErrIntractable) {
		t.Fatalf("err = %v, want ErrIntractable from the factor cap", err)
	}
	if after := heapAllocNow(); after > before+(64<<20) {
		t.Fatalf("heap grew %d bytes on the hard-cap path", after-before)
	}
	// The compile error is cached: the second attempt fails identically
	// without recompiling.
	if _, err2 := eng.Run(context.Background(), "PROB OBJECT leaf0"); !errors.Is(err2, govern.ErrIntractable) {
		t.Fatalf("second attempt: err = %v, want cached ErrIntractable", err2)
	}
}

// TestEstimateCancelsPromptly: a huge Monte-Carlo estimate must unwind
// within 100ms of its context being cancelled — the sharded sample loop
// polls the governor every sample.
func TestEstimateCancelsPromptly(t *testing.T) {
	eng := New(treeBib(t))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := eng.Run(ctx, "ESTIMATE 50000000 EXISTS R.book.author")
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancelled := time.Now()
	cancel()
	select {
	case err := <-done:
		if d := time.Since(cancelled); d > 100*time.Millisecond {
			t.Fatalf("cancellation took %v, want < 100ms", d)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("estimate never observed cancellation")
	}
}

// TestEstimateAdmissionOverStepBudget: a sample count whose predicted
// cost exceeds the step budget is refused upfront as budget_exceeded
// (retryable — fewer samples would fit), not intractable.
func TestEstimateAdmissionOverStepBudget(t *testing.T) {
	eng := New(treeBib(t), WithBudget(govern.Budget{MaxSteps: 1000}))
	_, err := eng.Run(context.Background(), "ESTIMATE 1000000 EXISTS R.book.author")
	if !errors.Is(err, govern.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if errors.Is(err, govern.ErrIntractable) {
		t.Fatal("sample-count overrun must not be classified intractable")
	}
	// A small estimate under the same budget still works.
	if _, err := eng.Run(context.Background(), "ESTIMATE 20 EXISTS R.book.author"); err != nil {
		t.Fatalf("small estimate under budget failed: %v", err)
	}
}

// TestStepBudgetTripsAtRuntime: work that passes admission but runs past
// the step budget stops with ErrBudgetExceeded mid-evaluation.
func TestStepBudgetTripsAtRuntime(t *testing.T) {
	eng := New(treeBib(t), WithBudget(govern.Budget{MaxSteps: 5}))
	_, err := eng.Run(context.Background(), "WORLDS")
	if !errors.Is(err, govern.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

// TestRunBatchStopsDrainingOnCancel is the regression test for the
// blocked-then-cancelled batch: with one worker occupied by a slow
// statement, cancelling the batch context must fail the queued
// statements promptly instead of evaluating them as the worker frees up.
func TestRunBatchStopsDrainingOnCancel(t *testing.T) {
	eng := New(treeBib(t), WithWorkers(1))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Every statement is slow, so none can sneak to completion in the
	// window before cancel: whichever one holds the worker is unwound by
	// the governor poll, and the queued rest must fail at (or right
	// after) acquiring the freed slot instead of evaluating.
	slow := "ESTIMATE 50000000 EXISTS R.book.author"
	stmts := []string{slow, slow, slow, slow}
	type batchOut struct {
		res     []BatchResult
		elapsed time.Duration
	}
	done := make(chan batchOut, 1)
	go func() {
		start := time.Now()
		res := eng.RunBatch(ctx, stmts)
		done <- batchOut{res, time.Since(start)}
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case out := <-done:
		for i, br := range out.res {
			if !errors.Is(br.Err, context.Canceled) {
				t.Errorf("statement %d: err = %v, want context.Canceled", i, br.Err)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled batch kept draining its queue")
	}
}

// panicInstance builds a DAG whose BN compile panics (a root OPF with
// only zero-probability entries yields a zero-cardinality variable). The
// shared leaf makes it a DAG so point queries take the BN route. It is
// deliberately invalid input used to prove containment.
func panicInstance() *core.ProbInstance {
	pi := core.NewProbInstance("R")
	pi.SetLCh("R", "a", "X", "Y")
	w := prob.NewOPF()
	w.Put(sets.NewSet("X", "Y"), 0)
	pi.SetOPF("R", w)
	for _, o := range []model.ObjectID{"X", "Y"} {
		pi.SetLCh(o, "c", "Z")
		keep := prob.NewOPF()
		keep.Put(sets.NewSet("Z"), 1)
		pi.SetOPF(o, keep)
	}
	return pi
}

// TestQueryPanicIsolated: a panicking evaluation surfaces as
// ErrQueryPanic on that query alone; the engine keeps serving.
func TestQueryPanicIsolated(t *testing.T) {
	eng := New(panicInstance())
	_, err := eng.Run(context.Background(), "PROB OBJECT X")
	if !errors.Is(err, ErrQueryPanic) {
		t.Fatalf("err = %v, want ErrQueryPanic", err)
	}
	// The engine is still alive: statements off the BN route succeed.
	if _, err := eng.Run(context.Background(), "STATS"); err != nil {
		t.Fatalf("engine dead after contained panic: %v", err)
	}
	// And the panicking route keeps failing cleanly rather than crashing.
	if _, err := eng.Run(context.Background(), "PROB OBJECT X"); !errors.Is(err, ErrQueryPanic) {
		t.Fatalf("second panic not contained: %v", err)
	}
}

// TestBatchPointPanicIsolated: a panic inside one point of a parallel
// batch is contained by its worker and reported as the batch error.
func TestBatchPointPanicIsolated(t *testing.T) {
	eng := New(panicInstance())
	_, err := eng.BatchPoint(context.Background(), pathexpr.MustParse("R.a"), []model.ObjectID{"X", "Y"})
	if !errors.Is(err, ErrQueryPanic) {
		t.Fatalf("err = %v, want ErrQueryPanic", err)
	}
}

// TestGovernedDeadlineReachesKernels: WithBudget's deadline bounds a
// statement even when the caller passes a background context.
func TestGovernedDeadlineReachesKernels(t *testing.T) {
	eng := New(treeBib(t), WithBudget(govern.Budget{Deadline: 30 * time.Millisecond}))
	start := time.Now()
	_, err := eng.Run(context.Background(), "ESTIMATE 50000000 EXISTS R.book.author")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("deadline enforcement took %v", d)
	}
}

// TestCostObserver: the estimated-vs-actual hook fires with the
// admission estimate and the steps actually charged.
func TestCostObserver(t *testing.T) {
	type obs struct {
		shape    string
		est, act int64
	}
	var got []obs
	eng := New(treeBib(t),
		WithBudget(govern.Budget{MaxSteps: 1 << 30}),
		WithCostObserver(func(shape string, estimated, actual int64) {
			got = append(got, obs{shape, estimated, actual})
		}))
	if _, err := eng.Run(context.Background(), "ESTIMATE 100 EXISTS R.book.author"); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("observer fired %d times, want 1", len(got))
	}
	if got[0].est <= 0 || got[0].act <= 0 {
		t.Fatalf("estimated/actual = %d/%d, want both positive", got[0].est, got[0].act)
	}
}

// TestHardFactorCapConstant: admission and the bayes pre-allocation
// guard must agree on the cap, or "admitted" and "compilable" drift.
func TestHardFactorCapConstant(t *testing.T) {
	if bayes.MaxFactorEntries != 1<<22 {
		t.Fatalf("MaxFactorEntries = %d; update the admission docs if this changes", bayes.MaxFactorEntries)
	}
}

// Package engine executes queries against one immutable probabilistic
// instance while lazily caching the support structures every query
// otherwise re-derives from scratch: the tree/DAG classification of the
// weak graph, the label-partitioned path index, the compiled Bayesian
// network, and the one-pass existence marginals. The first query that
// needs a structure pays for building it; every later query — from any
// goroutine — reuses it.
//
// An Engine is safe for concurrent use and assumes the wrapped instance is
// never mutated after construction (the contract the server catalog
// already enforces: algebra results are fresh instances). The execution
// API is context-aware — Run and the Prob* entry points check for
// cancellation between phases (parse, structure build, inference) — and
// the batch entry points (RunBatch, BatchPoint, parallel Monte-Carlo
// estimation) fan independent sub-evaluations out over a bounded worker
// pool.
//
// Per-engine observability: query and error counts, cache hits/misses,
// and a latency histogram, exported as a JSON-encodable snapshot (the
// server aggregates these under GET /metrics).
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pxml/internal/bayes"
	"pxml/internal/core"
	"pxml/internal/enumerate"
	"pxml/internal/govern"
	"pxml/internal/metrics"
	"pxml/internal/model"
	"pxml/internal/pathexpr"
	"pxml/internal/pxql"
	"pxml/internal/query"
	"pxml/internal/rescache"
)

// ErrQueryPanic reports that one query's evaluation panicked. The panic is
// contained to that query — the engine, its caches, and concurrent queries
// are unaffected — and surfaces as an error so servers can answer 500 for
// the one statement instead of crashing the process.
var ErrQueryPanic = errors.New("engine: query evaluation panicked")

// recoverQueryPanic converts a panic on the query path into ErrQueryPanic.
// Intended as `defer recoverQueryPanic(&err)` at each evaluation boundary.
func recoverQueryPanic(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("%w: %v", ErrQueryPanic, r)
	}
}

// lazy is a build-once cache slot. ready is set (with release semantics)
// only after once.Do completes, so a true load guarantees v/err are
// visible; callers that observe ready avoid the Once entirely.
type lazy[T any] struct {
	once  sync.Once
	ready atomic.Bool
	v     T
	err   error
}

// get returns the cached value, building it on first use. hit reports
// whether the value was already built (callers that raced the builder and
// had to wait count as misses). A build that panics is contained: the
// slot caches ErrQueryPanic (a sync.Once never re-runs, so letting the
// panic escape would leave every later caller a zero value with no
// error), and the engine keeps serving queries that don't need the slot.
func (l *lazy[T]) get(build func() (T, error)) (v T, err error, hit bool) {
	if l.ready.Load() {
		return l.v, l.err, true
	}
	l.once.Do(func() {
		defer func() {
			if r := recover(); r != nil {
				l.err = fmt.Errorf("%w: building query structure: %v", ErrQueryPanic, r)
			}
			l.ready.Store(true)
		}()
		l.v, l.err = build()
	})
	return l.v, l.err, false
}

// Engine wraps one immutable instance with cached query structures.
type Engine struct {
	pi  *core.ProbInstance
	sem chan struct{} // bounded worker pool for batch evaluation

	tree lazy[bool]
	idx  lazy[*pathexpr.Index]
	net  lazy[*bayes.Network]
	marg lazy[map[model.ObjectID]float64]
	prof lazy[govern.Profile]

	// budget is the per-query resource envelope (WithBudget). The zero
	// value imposes no limits; either way every entry point installs a
	// governor so caller cancellation reaches the inference kernels.
	budget govern.Budget

	// costObs, when set (WithCostObserver), receives each governed
	// statement's shape with the admission estimator's predicted step
	// cost and the steps actually charged — the estimated-vs-actual
	// telemetry the server exports.
	costObs func(shape string, estimated, actual int64)

	// Optional memoization of whole statement results (see
	// WithResultCache). rkey namespaces this engine's entries inside the
	// shared cache; the owner bumps the prefix to invalidate.
	rcache *rescache.Cache
	rkey   string

	// shapeObs, when set (WithShapeObserver), receives every evaluated
	// statement's shape and latency — the server's per-shape percentile
	// telemetry hangs off this hook.
	shapeObs func(shape string, d time.Duration)

	reg     *metrics.Registry
	queries *metrics.Counter
	errs    *metrics.Counter
	hits    *metrics.Counter
	misses  *metrics.Counter
	rhits   *metrics.Counter
	rmisses *metrics.Counter
	latency *metrics.Histogram
}

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers bounds the worker pool used by the batch entry points
// (default: 8). n < 1 is treated as 1.
func WithWorkers(n int) Option {
	return func(e *Engine) {
		if n < 1 {
			n = 1
		}
		e.sem = make(chan struct{}, n)
	}
}

// WithResultCache memoizes successful Run results in a shared cache,
// keyed by keyPrefix + the statement text. Concurrent identical
// statements collapse to one evaluation (singleflight). Instance-valued
// results are never cached — they can be arbitrarily large and are handed
// to callers who may store them. The cache holds no reference back to the
// engine, so invalidation is the owner's job: replace the engine (or the
// prefix) whenever the underlying instance changes, and the old entries
// become unreachable and age out of the LRU.
func WithResultCache(c *rescache.Cache, keyPrefix string) Option {
	return func(e *Engine) {
		e.rcache = c
		e.rkey = keyPrefix
	}
}

// WithShapeObserver registers f to receive the statement shape (see
// pxql.ClassifyShape) and wall-clock latency of every Run/Exec/Prob*
// evaluation, including result-cache hits. f runs on the request
// goroutine after the result is ready, so it must be fast and must not
// block — recording into a lock-free metrics.Timer is the intended use.
func WithShapeObserver(f func(shape string, d time.Duration)) Option {
	return func(e *Engine) { e.shapeObs = f }
}

// WithBudget sets the per-query resource envelope. Each Run/Exec/Prob*
// call gets its own governor enforcing the budget (deadline, step budget,
// approximate allocation budget) cooperatively inside the inference
// kernels, plus an upfront admission check that refuses statements whose
// predicted cost provably exceeds the budget (govern.ErrIntractable)
// before any factor table is allocated. The zero budget imposes no limits
// but still propagates cancellation into the kernels.
func WithBudget(b govern.Budget) Option {
	return func(e *Engine) { e.budget = b }
}

// WithCostObserver registers f to receive, for every governed statement,
// its shape, the admission estimator's predicted step cost (0 when the
// statement's shape has no estimator), and the steps actually charged.
// f runs on the request goroutine after the result is ready; it must be
// fast and must not block.
func WithCostObserver(f func(shape string, estimated, actual int64)) Option {
	return func(e *Engine) { e.costObs = f }
}

// defaultWorkers bounds batch parallelism when WithWorkers is not given.
// A fixed small constant (rather than GOMAXPROCS) keeps a server hosting
// many engines from over-subscribing the machine.
const defaultWorkers = 8

// New wraps an instance. The instance must not be mutated afterwards.
func New(pi *core.ProbInstance, opts ...Option) *Engine {
	e := &Engine{
		pi:  pi,
		sem: make(chan struct{}, defaultWorkers),
		reg: metrics.NewRegistry(),
	}
	e.queries = e.reg.Counter("queries")
	e.errs = e.reg.Counter("errors")
	e.hits = e.reg.Counter("cache_hits")
	e.misses = e.reg.Counter("cache_misses")
	e.rhits = e.reg.Counter("result_cache_hits")
	e.rmisses = e.reg.Counter("result_cache_misses")
	e.latency = e.reg.Histogram("latency")
	for _, o := range opts {
		o(e)
	}
	return e
}

// Instance returns the wrapped instance (treat as read-only).
func (e *Engine) Instance() *core.ProbInstance { return e.pi }

// Workers returns the batch worker-pool bound.
func (e *Engine) Workers() int { return cap(e.sem) }

// Metrics returns a JSON-encodable snapshot of the engine's counters and
// latency histogram.
func (e *Engine) Metrics() map[string]any { return e.reg.Snapshot() }

// count tallies a cache access on the engine's hit/miss counters.
func (e *Engine) count(hit bool) {
	if hit {
		e.hits.Inc()
	} else {
		e.misses.Inc()
	}
}

// IsTree returns the cached tree/DAG classification of the weak graph.
func (e *Engine) IsTree() bool {
	v, _, hit := e.tree.get(func() (bool, error) { return e.pi.IsTree(), nil })
	e.count(hit)
	return v
}

// Index returns the cached label-partitioned path index.
func (e *Engine) Index() *pathexpr.Index {
	v, _, hit := e.idx.get(func() (*pathexpr.Index, error) {
		return pathexpr.NewIndex(e.pi.WeakInstance.Graph()), nil
	})
	e.count(hit)
	return v
}

// Network returns the cached compiled Bayesian network (the compile error,
// if any, is cached too).
func (e *Engine) Network() (*bayes.Network, error) {
	v, err, hit := e.net.get(func() (*bayes.Network, error) { return bayes.Compile(e.pi) })
	e.count(hit)
	return v, err
}

// Marginals returns the cached existence marginals P(o exists) for every
// object (tree instances; the error is cached on DAGs). The returned map
// is a copy — callers may keep or mutate it.
func (e *Engine) Marginals() (map[model.ObjectID]float64, error) {
	v, err, hit := e.marg.get(func() (map[model.ObjectID]float64, error) {
		return query.ExistenceMarginals(e.pi)
	})
	e.count(hit)
	if err != nil {
		return nil, err
	}
	out := make(map[model.ObjectID]float64, len(v))
	for k, p := range v {
		out[k] = p
	}
	return out, nil
}

// Profile returns the cached upfront width/cost profile of the instance
// (govern.Measure): the structural quantities admission control compares
// against the budget without allocating any inference state.
func (e *Engine) Profile() govern.Profile {
	v, _, hit := e.prof.get(func() (govern.Profile, error) { return govern.Measure(e.pi), nil })
	e.count(hit)
	return v
}

// Budget returns the engine's configured per-query resource envelope.
func (e *Engine) Budget() govern.Budget { return e.budget }

// governed returns ctx carrying a governor for one query. A governor
// already on ctx is reused (backend sub-evaluations run under their
// statement's governor rather than getting a fresh budget each); otherwise
// the engine's budget deadline is applied to ctx and a new governor
// installed. The cancel func must be called when the query finishes.
func (e *Engine) governed(ctx context.Context) (context.Context, *govern.Governor, context.CancelFunc) {
	if g := govern.From(ctx); g != nil {
		return ctx, g, func() {}
	}
	cancel := context.CancelFunc(func() {})
	if e.budget.Deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, e.budget.Deadline)
	}
	g := govern.New(ctx, e.budget)
	return govern.With(ctx, g), g, cancel
}

// admit is the upfront admission check: it compares the statement's
// predicted cost (from the cached instance profile) against the engine's
// budget and refuses provably-over-budget work before any inference state
// is allocated. Structural impossibilities — a compiled CPT that cannot
// fit under the hard factor cap or the byte budget — are
// govern.ErrIntractable (retrying the same statement cannot succeed);
// a sample count that merely overruns the step budget is
// govern.ErrBudgetExceeded (a cheaper variant may fit). The predicted
// step cost is recorded on g for estimated-vs-actual observability.
func (e *Engine) admit(op string, top int, g *govern.Governor) error {
	b := e.budget
	if b.MaxSteps == 0 && b.MaxBytes == 0 {
		return nil
	}
	switch op {
	case "estimate-exists", "estimate-point":
		prof := e.Profile()
		per := int64(prof.Objects)
		if per < 1 {
			per = 1
		}
		est := int64(top) * per
		g.SetEstimate(est)
		if b.MaxSteps > 0 && est > b.MaxSteps {
			return fmt.Errorf("%w: %d samples × %d objects ≈ %d steps over the %d-step budget (reduce the sample count)",
				govern.ErrBudgetExceeded, top, per, est, b.MaxSteps)
		}
	case "worlds", "topk":
		prof := e.Profile()
		g.SetEstimate(govern.ClampSteps(prof.WorldsFloor))
		if b.MaxSteps > 0 && prof.WorldsFloor > float64(b.MaxSteps) {
			return fmt.Errorf("%w: at least %.0f possible worlds exceed the %d-step budget",
				govern.ErrIntractable, prof.WorldsFloor, b.MaxSteps)
		}
	case "prob-object", "prob-point", "prob-exists", "prob-value":
		prof := e.Profile()
		if prof.Tree && op != "prob-object" {
			// ε-recursion route: one pass over the local distributions.
			g.SetEstimate(prof.TotalOPFEntries)
			return nil
		}
		// BN route: compiling materializes every CPT.
		g.SetEstimate(govern.ClampSteps(prof.TotalCPTCells))
		if prof.MaxCPTCells > float64(bayes.MaxFactorEntries) {
			return fmt.Errorf("%w: CPT for %s needs %.3g cells, over the %d-cell factor cap",
				govern.ErrIntractable, prof.WidestObject, prof.MaxCPTCells, int64(bayes.MaxFactorEntries))
		}
		if b.MaxBytes > 0 && prof.TotalCPTCells*8 > float64(b.MaxBytes) {
			return fmt.Errorf("%w: compiled network needs ≈%.3g bytes, over the %d-byte budget",
				govern.ErrIntractable, prof.TotalCPTCells*8, b.MaxBytes)
		}
		if b.MaxSteps > 0 && prof.TotalCPTCells > float64(b.MaxSteps) {
			return fmt.Errorf("%w: compiled network needs ≈%.3g cells, over the %d-step budget",
				govern.ErrIntractable, prof.TotalCPTCells, b.MaxSteps)
		}
	}
	return nil
}

// Warm precomputes the structures queries will need: the tree
// classification and path index always, the Bayesian network only for DAG
// instances (tree queries never touch it). Cancellation is honored
// between phases.
func (e *Engine) Warm(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	tree := e.IsTree()
	e.Index()
	if tree {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	_, err := e.Network()
	return err
}

// finish records one query's latency and error outcome.
func (e *Engine) finish(start time.Time, err error) {
	e.latency.Observe(time.Since(start))
	if err != nil {
		e.errs.Inc()
	}
}

// observeShape feeds the shape observer, if any, with the elapsed time
// since start. Intended as a deferred call in the instrumented entry
// points so each statement is observed exactly once.
func (e *Engine) observeShape(shape string, start time.Time) {
	if e.shapeObs != nil {
		e.shapeObs(shape, time.Since(start))
	}
}

// Run parses and executes one pxql statement. Cancellation and deadlines
// on ctx are checked between the parse, structure-build and inference
// phases (a phase already in flight runs to completion). With a result
// cache attached (WithResultCache), a repeated statement is answered from
// the cache and concurrent identical statements share one evaluation;
// hits still count toward queries and latency.
func (e *Engine) Run(ctx context.Context, statement string) (res *pxql.Result, err error) {
	start := time.Now()
	e.queries.Inc()
	defer func() { e.finish(start, err) }()
	if e.shapeObs != nil {
		defer e.observeShape(pxql.ClassifyShape(statement), start)
	}
	if err = ctx.Err(); err != nil {
		return nil, err
	}
	if e.rcache == nil {
		res, err = e.runParsed(ctx, statement)
		return res, err
	}
	computed := false
	v, err := e.rcache.DoCtx(ctx, e.rkey+statement, func() (any, int64, error) {
		computed = true
		r, rerr := e.runParsed(ctx, statement)
		if rerr != nil {
			return nil, 0, rerr
		}
		if r.Instance != nil {
			return r, -1, nil // share with concurrent waiters, don't retain
		}
		return r, resultCost(statement, r), nil
	})
	if computed {
		e.rmisses.Inc()
	} else {
		e.rhits.Inc()
	}
	if err != nil {
		return nil, err
	}
	r := v.(*pxql.Result)
	if r.Instance != nil {
		return r, nil
	}
	// Hand out a copy so no caller aliases the cached value (the cached
	// result must stay byte-identical to a fresh evaluation).
	res = copyResult(r)
	return res, nil
}

// runParsed is the uncached parse+execute path behind Run.
func (e *Engine) runParsed(ctx context.Context, statement string) (*pxql.Result, error) {
	q, err := pxql.Parse(statement)
	if err != nil {
		return nil, err
	}
	return e.exec(ctx, q)
}

// resultCost estimates the bytes a cached result pins: key text plus the
// rendered answer plus the fixed struct overhead.
func resultCost(statement string, r *pxql.Result) int64 {
	return int64(len(statement)) + int64(len(r.Text)) + 64
}

// copyResult clones a scalar result (Instance is nil by construction on
// every cached entry).
func copyResult(r *pxql.Result) *pxql.Result {
	out := &pxql.Result{Text: r.Text}
	if r.Prob != nil {
		p := *r.Prob
		out.Prob = &p
	}
	return out
}

// Exec executes a parsed statement (see Run for the context contract).
func (e *Engine) Exec(ctx context.Context, q pxql.Query) (res *pxql.Result, err error) {
	start := time.Now()
	e.queries.Inc()
	defer func() { e.finish(start, err) }()
	defer e.observeShape(q.Shape(), start)
	res, err = e.exec(ctx, q)
	return res, err
}

func (e *Engine) exec(ctx context.Context, q pxql.Query) (res *pxql.Result, err error) {
	if err = ctx.Err(); err != nil {
		return nil, err
	}
	ctx, g, cancel := e.governed(ctx)
	defer cancel()
	if err = e.admit(q.Op, q.Top, g); err != nil {
		return nil, err
	}
	if e.costObs != nil {
		defer func() { e.costObs(q.Shape(), g.Estimate(), g.Steps()) }()
	}
	defer recoverQueryPanic(&err)
	res, err = pxql.ExecWithCtx(ctx, e.pi, q, backend{e: e, ctx: ctx})
	return res, err
}

// ProbExists returns P(∃o. o ∈ p): the Section 6.2 tree fast path through
// the cached index, or cached-network BN inference on DAGs.
func (e *Engine) ProbExists(ctx context.Context, p pathexpr.Path) (pr float64, err error) {
	start := time.Now()
	e.queries.Inc()
	defer func() { e.finish(start, err) }()
	defer e.observeShape(pxql.ShapeExists, start)
	ctx, g, cancel := e.governed(ctx)
	defer cancel()
	if err = e.admit("prob-exists", 0, g); err != nil {
		return 0, err
	}
	defer recoverQueryPanic(&err)
	pr, err = e.existsProb(ctx, p)
	return pr, err
}

// ProbPoint returns P(o ∈ p), routed like ProbExists.
func (e *Engine) ProbPoint(ctx context.Context, p pathexpr.Path, o model.ObjectID) (pr float64, err error) {
	start := time.Now()
	e.queries.Inc()
	defer func() { e.finish(start, err) }()
	defer e.observeShape(pxql.ShapePoint, start)
	ctx, g, cancel := e.governed(ctx)
	defer cancel()
	if err = e.admit("prob-point", 0, g); err != nil {
		return 0, err
	}
	defer recoverQueryPanic(&err)
	pr, err = e.pointProb(ctx, p, o)
	return pr, err
}

// ProbValue returns P(o ∈ p ∧ val(o) = v). On trees it runs the ε
// recursion with the VPF as the success probability; on DAGs it factors
// into P(o ∈ p) · VPF(o)(v) (the value draw is independent of the
// structure choice given that o occurs).
func (e *Engine) ProbValue(ctx context.Context, p pathexpr.Path, o model.ObjectID, v model.Value) (pr float64, err error) {
	start := time.Now()
	e.queries.Inc()
	defer func() { e.finish(start, err) }()
	defer e.observeShape(pxql.ShapeExists, start)
	if err = ctx.Err(); err != nil {
		return 0, err
	}
	ctx, g, cancel := e.governed(ctx)
	defer cancel()
	if err = e.admit("prob-value", 0, g); err != nil {
		return 0, err
	}
	defer recoverQueryPanic(&err)
	if e.IsTree() {
		pr, err = query.ValuePointQueryIndexedCtx(ctx, e.pi, e.Index(), p, o, v)
		return pr, err
	}
	vpf := e.pi.VPF(o)
	if vpf == nil {
		return 0, nil
	}
	pr, err = e.pointProb(ctx, p, o)
	if err != nil {
		return 0, err
	}
	pr *= vpf.Prob(v)
	return pr, nil
}

// ProbObject returns the existence marginal P(o exists) via the cached
// network (DAG-capable).
func (e *Engine) ProbObject(ctx context.Context, o model.ObjectID) (pr float64, err error) {
	start := time.Now()
	e.queries.Inc()
	defer func() { e.finish(start, err) }()
	defer e.observeShape(pxql.ShapePoint, start)
	ctx, g, cancel := e.governed(ctx)
	defer cancel()
	if err = e.admit("prob-object", 0, g); err != nil {
		return 0, err
	}
	defer recoverQueryPanic(&err)
	pr, err = e.objectProb(ctx, o)
	return pr, err
}

// Uninstrumented primitives: the Prob* wrappers and the pxql backend share
// these so each statement is metered exactly once.

func (e *Engine) pointProb(ctx context.Context, p pathexpr.Path, o model.ObjectID) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if e.IsTree() {
		return query.PointQueryIndexedCtx(ctx, e.pi, e.Index(), p, o)
	}
	net, err := e.Network()
	if err != nil {
		return 0, err
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return bayes.PathProbWithCtx(ctx, net, e.pi, p, o)
}

func (e *Engine) existsProb(ctx context.Context, p pathexpr.Path) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if e.IsTree() {
		return query.ExistsQueryIndexedCtx(ctx, e.pi, e.Index(), p)
	}
	net, err := e.Network()
	if err != nil {
		return 0, err
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return bayes.PathProbWithCtx(ctx, net, e.pi, p, "")
}

func (e *Engine) objectProb(ctx context.Context, o model.ObjectID) (float64, error) {
	net, err := e.Network()
	if err != nil {
		return 0, err
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return net.ProbExistsCtx(ctx, o)
}

// backend adapts the engine's cached primitives to the pxql.Backend seam,
// carrying the caller's context into each sub-evaluation.
type backend struct {
	e   *Engine
	ctx context.Context
}

func (b backend) PointProb(p pathexpr.Path, o model.ObjectID) (float64, error) {
	return b.e.pointProb(b.ctx, p, o)
}

func (b backend) ExistsProb(p pathexpr.Path) (float64, error) {
	return b.e.existsProb(b.ctx, p)
}

func (b backend) ValueExistsProb(p pathexpr.Path, v model.Value) (float64, error) {
	if err := b.ctx.Err(); err != nil {
		return 0, err
	}
	if b.e.IsTree() {
		return query.ValueExistsQueryIndexedCtx(b.ctx, b.e.pi, b.e.Index(), p, v)
	}
	// Parity with the direct backend: no DAG route exists for
	// value-existence over multiple leaves.
	return query.ValueExistsQuery(b.e.pi, p, v)
}

func (b backend) ObjectProb(o model.ObjectID) (float64, error) {
	return b.e.objectProb(b.ctx, o)
}

func (b backend) Marginals() (map[model.ObjectID]float64, error) {
	if err := b.ctx.Err(); err != nil {
		return nil, err
	}
	return b.e.Marginals()
}

func (b backend) Estimate(op string, p pathexpr.Path, o model.ObjectID, n int) (enumerate.Estimate, error) {
	return b.e.estimate(b.ctx, op, p, o, n)
}

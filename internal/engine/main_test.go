package engine

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

// TestMain fails the package on goroutine leaks. The engine spawns
// bounded worker pools and governed per-query goroutines; every one of
// them must unwind when its context is cancelled, its budget trips, or
// its panic is contained. A straggler left computing after cancellation
// is exactly the runaway this package exists to prevent, so the test
// binary itself enforces it.
func TestMain(m *testing.M) {
	baseline := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 {
		const slack = 5
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > baseline+slack {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				fmt.Fprintf(os.Stderr, "goroutine leak: %d at start, %d after tests\n%s\n",
					baseline, runtime.NumGoroutine(), buf[:n])
				code = 1
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	os.Exit(code)
}

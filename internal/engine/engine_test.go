package engine

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"pxml/internal/algebra"
	"pxml/internal/core"
	"pxml/internal/fixtures"
	"pxml/internal/metrics"
	"pxml/internal/model"
	"pxml/internal/pathexpr"
	"pxml/internal/prob"
	"pxml/internal/pxql"
	"pxml/internal/sets"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// treeBib builds the tree bibliography the pxql tests use, so engine
// results can be cross-checked against the direct evaluation route.
func treeBib(t testing.TB) *core.ProbInstance {
	t.Helper()
	pi := core.NewProbInstance("R")
	if err := pi.RegisterType(model.NewType("title-type", "VQDB", "Lore")); err != nil {
		t.Fatal(err)
	}
	pi.SetLCh("R", "book", "B1", "B2")
	w := prob.NewOPF()
	w.Put(sets.NewSet("B1"), 0.3)
	w.Put(sets.NewSet("B2"), 0.2)
	w.Put(sets.NewSet("B1", "B2"), 0.5)
	pi.SetOPF("R", w)
	pi.SetLCh("B1", "author", "A1")
	pi.SetLCh("B1", "title", "T1")
	w1 := prob.NewOPF()
	w1.Put(sets.NewSet(), 0.1)
	w1.Put(sets.NewSet("A1"), 0.3)
	w1.Put(sets.NewSet("T1"), 0.2)
	w1.Put(sets.NewSet("A1", "T1"), 0.4)
	pi.SetOPF("B1", w1)
	pi.SetLCh("B2", "author", "A2")
	w2 := prob.NewOPF()
	w2.Put(sets.NewSet("A2"), 1)
	pi.SetOPF("B2", w2)
	if err := pi.SetLeafType("T1", "title-type"); err != nil {
		t.Fatal(err)
	}
	v := prob.NewVPF()
	v.Put("VQDB", 0.6)
	v.Put("Lore", 0.4)
	pi.SetVPF("T1", v)
	return pi
}

// statements every instance kind should answer identically through the
// engine and through the direct pxql route.
var parityStatements = []string{
	"PROB R.book = B1",
	"PROB R.book.author = A1",
	"PROB EXISTS R.book.author",
	"PROB OBJECT A1",
	"CHAIN R.B1.A1",
	"STATS",
	"WORLDS 3",
	"TOPK 2",
}

func TestEngineMatchesDirectEvaluation(t *testing.T) {
	cases := []struct {
		name  string
		pi    *core.ProbInstance
		extra []string
	}{
		{"tree", treeBib(t), []string{
			"PROB VAL(R.book.title) = Lore",
			"MARGINALS",
			"COUNT R.book.author",
			"SELECT R.book = B1",
			"PROJECT R.book.author",
		}},
		{"dag", fixtures.Figure2(), nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := New(tc.pi)
			ctx := context.Background()
			for _, stmt := range append(append([]string(nil), parityStatements...), tc.extra...) {
				want, werr := pxql.Eval(tc.pi, stmt)
				got, gerr := eng.Run(ctx, stmt)
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("%s: direct err=%v engine err=%v", stmt, werr, gerr)
				}
				if werr != nil {
					continue
				}
				if (want.Prob == nil) != (got.Prob == nil) {
					t.Fatalf("%s: prob presence mismatch", stmt)
				}
				if want.Prob != nil && !approx(*want.Prob, *got.Prob) {
					t.Errorf("%s: engine %v, direct %v", stmt, *got.Prob, *want.Prob)
				}
				if want.Text != got.Text {
					t.Errorf("%s: text mismatch\nengine: %s\ndirect: %s", stmt, got.Text, want.Text)
				}
			}
		})
	}
}

func TestProbValueFactorsOnDAG(t *testing.T) {
	pi := fixtures.Figure2VariedLeaves()
	eng := New(pi)
	ctx := context.Background()
	p := pathexpr.MustParse("R.book.title")
	// P(T1 ∈ R.book.title ∧ val(T1) = VQDB) should equal
	// P(T1 ∈ R.book.title) · VPF(T1)(VQDB).
	point, err := eng.ProbPoint(ctx, p, "T1")
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.ProbValue(ctx, p, "T1", "VQDB")
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, point*0.7) {
		t.Errorf("ProbValue = %v, want %v", got, point*0.7)
	}
	// Unvalued object → 0.
	if pr, err := eng.ProbValue(ctx, pathexpr.MustParse("R.book"), "B1", "x"); err != nil || pr != 0 {
		t.Errorf("ProbValue on non-leaf = %v, %v", pr, err)
	}
}

func TestEngineCaches(t *testing.T) {
	eng := New(fixtures.Figure2())
	n1, err := eng.Network()
	if err != nil {
		t.Fatal(err)
	}
	n2, _ := eng.Network()
	if n1 != n2 {
		t.Error("network not cached")
	}
	if eng.Index() != eng.Index() {
		t.Error("index not cached")
	}
	m := eng.Metrics()
	if m["cache_hits"].(int64) == 0 || m["cache_misses"].(int64) == 0 {
		t.Errorf("cache counters not moving: %v", m)
	}
	// Marginals returns a caller-owned copy.
	tree := New(treeBib(t))
	m1, err := tree.Marginals()
	if err != nil {
		t.Fatal(err)
	}
	m1["R"] = -1
	m2, _ := tree.Marginals()
	if m2["R"] == -1 {
		t.Error("Marginals aliases the cache")
	}
}

func TestEngineMetricsCount(t *testing.T) {
	eng := New(treeBib(t))
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := eng.Run(ctx, "PROB R.book = B1"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Run(ctx, "NOT A STATEMENT"); err == nil {
		t.Fatal("bad statement accepted")
	}
	m := eng.Metrics()
	if q := m["queries"].(int64); q != 6 {
		t.Errorf("queries = %d, want 6", q)
	}
	if e := m["errors"].(int64); e != 1 {
		t.Errorf("errors = %d, want 1", e)
	}
	lat := m["latency"].(metrics.HistogramSnapshot)
	if lat.Count != 6 {
		t.Errorf("latency count = %d, want 6", lat.Count)
	}
}

func TestEngineContextCancellation(t *testing.T) {
	eng := New(fixtures.Figure2())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Run(ctx, "PROB OBJECT A1"); err != context.Canceled {
		t.Errorf("Run on cancelled ctx: %v", err)
	}
	if _, err := eng.ProbPoint(ctx, pathexpr.MustParse("R.book"), "B1"); err != context.Canceled {
		t.Errorf("ProbPoint on cancelled ctx: %v", err)
	}
	if err := eng.Warm(ctx); err != context.Canceled {
		t.Errorf("Warm on cancelled ctx: %v", err)
	}
	if _, err := eng.BatchPoint(ctx, pathexpr.MustParse("R.book"), []model.ObjectID{"B1", "B2"}); err == nil {
		t.Error("BatchPoint on cancelled ctx succeeded")
	}
	deadline, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := eng.Run(deadline, "STATS"); err != context.DeadlineExceeded {
		t.Errorf("expired deadline: %v", err)
	}
}

func TestBatchPointMatchesSingles(t *testing.T) {
	for _, pi := range []*core.ProbInstance{treeBib(t), fixtures.Figure2()} {
		eng := New(pi, WithWorkers(3))
		ctx := context.Background()
		p := pathexpr.MustParse("R.book.author")
		objs := []model.ObjectID{"A1", "A2", "A3", "nope"}
		got, err := eng.BatchPoint(ctx, p, objs)
		if err != nil {
			t.Fatal(err)
		}
		for i, o := range objs {
			want, err := eng.ProbPoint(ctx, p, o)
			if err != nil {
				t.Fatal(err)
			}
			if !approx(got[i], want) {
				t.Errorf("BatchPoint[%s] = %v, want %v", o, got[i], want)
			}
		}
	}
}

func TestRunBatch(t *testing.T) {
	eng := New(treeBib(t), WithWorkers(2))
	stmts := []string{"PROB R.book = B1", "STATS", "BOGUS", "PROB EXISTS R.book.author"}
	out := eng.RunBatch(context.Background(), stmts)
	if len(out) != 4 {
		t.Fatalf("len = %d", len(out))
	}
	if out[0].Err != nil || out[0].Result.Prob == nil || !approx(*out[0].Result.Prob, 0.8) {
		t.Errorf("batch[0] = %+v", out[0])
	}
	if out[1].Err != nil || !strings.Contains(out[1].Result.Text, "objects=") {
		t.Errorf("batch[1] = %+v", out[1])
	}
	if out[2].Err == nil {
		t.Error("batch[2] should fail")
	}
	if out[3].Err != nil {
		t.Errorf("batch[3] = %v", out[3].Err)
	}
}

func TestEstimateSharded(t *testing.T) {
	pi := treeBib(t)
	eng := New(pi)
	ctx := context.Background()
	exact, err := eng.ProbExists(ctx, pathexpr.MustParse("R.book.author"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(ctx, "ESTIMATE 4000 EXISTS R.book.author")
	if err != nil {
		t.Fatal(err)
	}
	if res.Prob == nil || math.Abs(*res.Prob-exact) > 0.05 {
		t.Errorf("sharded estimate %v too far from exact %v", res.Prob, exact)
	}
	// Determinism: the sharded seed sequence is fixed.
	res2, err := eng.Run(ctx, "ESTIMATE 4000 EXISTS R.book.author")
	if err != nil {
		t.Fatal(err)
	}
	if *res.Prob != *res2.Prob {
		t.Errorf("sharded estimate not deterministic: %v vs %v", *res.Prob, *res2.Prob)
	}
	// Below the shard threshold the sequential route is used.
	if _, err := eng.Run(ctx, "ESTIMATE 5 EXISTS R.book.author"); err != nil {
		t.Fatal(err)
	}
}

func TestJoinAndProductEngines(t *testing.T) {
	ctx := context.Background()
	a := New(treeBib(t))
	b := New(treeBib(t))
	prodEng, renames, err := Product(ctx, a, b, "ROOT")
	if err != nil {
		t.Fatal(err)
	}
	wantProd, wantRenames, err := algebra.CartesianProduct(a.Instance(), b.Instance(), "ROOT")
	if err != nil {
		t.Fatal(err)
	}
	if !core.Equal(prodEng.Instance(), wantProd, 1e-12) {
		t.Error("Product instance differs from algebra.CartesianProduct")
	}
	if len(renames) != len(wantRenames) {
		t.Errorf("renames = %v, want %v", renames, wantRenames)
	}

	cond := algebra.ObjectCondition{Path: pathexpr.MustParse("ROOT.book"), Object: "B1"}
	joinEng, res, err := Join(ctx, a, b, "ROOT", cond)
	if err != nil {
		t.Fatal(err)
	}
	wantJoin, err := algebra.Join(a.Instance(), b.Instance(), "ROOT", cond)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Prob, wantJoin.Prob) {
		t.Errorf("join prob %v, want %v", res.Prob, wantJoin.Prob)
	}
	if !core.Equal(joinEng.Instance(), wantJoin.Instance, 1e-12) {
		t.Error("Join instance differs from algebra.Join")
	}
}

// TestEngineConcurrentHammer drives one engine from many goroutines with a
// mix of point, existence, object, batch and pxql statement queries.
// Run with -race; it is the engine's concurrency-safety witness.
func TestEngineConcurrentHammer(t *testing.T) {
	for _, tc := range []struct {
		name string
		pi   *core.ProbInstance
	}{
		{"tree", treeBib(t)},
		{"dag", fixtures.Figure2()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng := New(tc.pi, WithWorkers(4))
			ctx := context.Background()
			// Reference answers computed through the direct route.
			wantPoint, err := pxql.Eval(tc.pi, "PROB R.book.author = A1")
			if err != nil {
				t.Fatal(err)
			}
			wantExists, err := pxql.Eval(tc.pi, "PROB EXISTS R.book.author")
			if err != nil {
				t.Fatal(err)
			}
			const goroutines = 16
			const iters = 25
			var wg sync.WaitGroup
			errCh := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					p := pathexpr.MustParse("R.book.author")
					for i := 0; i < iters; i++ {
						switch (g + i) % 5 {
						case 0:
							pr, err := eng.ProbPoint(ctx, p, "A1")
							if err != nil || !approx(pr, *wantPoint.Prob) {
								errCh <- err
								return
							}
						case 1:
							pr, err := eng.ProbExists(ctx, p)
							if err != nil || !approx(pr, *wantExists.Prob) {
								errCh <- err
								return
							}
						case 2:
							if _, err := eng.Run(ctx, "PROB OBJECT A1"); err != nil {
								errCh <- err
								return
							}
						case 3:
							if _, err := eng.Run(ctx, "STATS"); err != nil {
								errCh <- err
								return
							}
						case 4:
							if _, err := eng.BatchPoint(ctx, p, []model.ObjectID{"A1", "A2"}); err != nil {
								errCh <- err
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Errorf("hammer worker failed: %v", err)
			}
			m := eng.Metrics()
			if m["queries"].(int64) == 0 || m["cache_hits"].(int64) == 0 {
				t.Errorf("metrics after hammer: %v", m)
			}
		})
	}
}

// TestShapeObserver: every instrumented entry point must report its
// statement shape exactly once, with a plausible duration.
func TestShapeObserver(t *testing.T) {
	var mu sync.Mutex
	counts := map[string]int{}
	eng := New(treeBib(t), WithShapeObserver(func(shape string, d time.Duration) {
		if d < 0 {
			t.Errorf("negative duration for shape %q", shape)
		}
		mu.Lock()
		counts[shape]++
		mu.Unlock()
	}))
	ctx := context.Background()
	run := func(stmt string) {
		t.Helper()
		if _, err := eng.Run(ctx, stmt); err != nil {
			t.Fatalf("Run(%q): %v", stmt, err)
		}
	}
	run("PROJECT R.book.author")
	run("SELECT R.book = B1")
	run("PROB R.book = B1")
	run("PROB EXISTS R.book")
	run("WORLDS 2")
	run("ESTIMATE 50 EXISTS R.book")
	run("STATS")
	if _, err := eng.ProbExists(ctx, pathexpr.MustParse("R.book")); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ProbPoint(ctx, pathexpr.MustParse("R.book"), "B1"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.BatchPoint(ctx, pathexpr.MustParse("R.book"), []model.ObjectID{"B1", "B2"}); err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		pxql.ShapeProject:  1,
		pxql.ShapeSelect:   1,
		pxql.ShapePoint:    2, // PROB point statement + ProbPoint call
		pxql.ShapeExists:   2, // PROB EXISTS statement + ProbExists call
		pxql.ShapeEnum:     1,
		pxql.ShapeEstimate: 1,
		pxql.ShapeStats:    1,
		pxql.ShapeBatch:    1,
	}
	mu.Lock()
	defer mu.Unlock()
	for shape, n := range want {
		if counts[shape] != n {
			t.Errorf("shape %q observed %d times, want %d (all: %v)", shape, counts[shape], n, counts)
		}
	}
}

package engine

// Benchmarks for the warm-query path: the same point query repeated
// against one engine, with and without the shared result cache. The
// uncached run still benefits from the engine's structure caches (plan,
// weak-instance graph), so the pair isolates exactly what the result
// cache adds.

import (
	"context"
	"testing"

	"pxml/internal/fixtures"
	"pxml/internal/rescache"
)

const benchStmt = "PROB OBJECT A1"

func benchmarkRepeatedQuery(b *testing.B, eng *Engine) {
	b.Helper()
	ctx := context.Background()
	if _, err := eng.Run(ctx, benchStmt); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(ctx, benchStmt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryPointUncached(b *testing.B) {
	benchmarkRepeatedQuery(b, New(fixtures.Figure2()))
}

func BenchmarkQueryPointCached(b *testing.B) {
	c := rescache.New(1 << 20)
	benchmarkRepeatedQuery(b, New(fixtures.Figure2(), WithResultCache(c, "bench@1\x00")))
}

// Package metrics provides the small, dependency-free instrumentation
// primitives the query engine and HTTP server use: monotonic counters,
// up-down gauges, fixed-bucket latency histograms, and a named registry
// whose Snapshot is directly JSON-encodable (the expvar-style payload
// behind GET /metrics).
//
// All types are safe for concurrent use. Counters and gauges are
// lock-free; histograms take a short mutex per observation, which is
// negligible next to the inference work they time.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level that can move both ways — in-flight
// requests, queue depths, on/off health flags.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the current level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// bucketBounds are the histogram's inclusive upper bounds; observations
// above the last bound land in the overflow bucket. The spacing is
// decade-exponential, matching the spread between an index-hit point query
// (microseconds) and a cold DAG inference (potentially seconds).
var bucketBounds = []time.Duration{
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
}

// numBuckets is len(bucketBounds) + 1 (the overflow bucket).
const numBuckets = 7

// bucketLabels mirror bucketBounds for snapshots, plus the overflow.
var bucketLabels = [numBuckets]string{
	"le_100us", "le_1ms", "le_10ms", "le_100ms", "le_1s", "le_10s", "inf",
}

// Histogram accumulates durations into fixed exponential buckets.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     time.Duration
	max     time.Duration
	buckets [numBuckets]int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := 0
	for i < len(bucketBounds) && d > bucketBounds[i] {
		i++
	}
	h.mu.Lock()
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	h.buckets[i]++
	h.mu.Unlock()
}

// HistogramSnapshot is a point-in-time, JSON-encodable histogram view.
// Durations are reported in milliseconds.
type HistogramSnapshot struct {
	Count  int64            `json:"count"`
	SumMS  float64          `json:"sum_ms"`
	MeanMS float64          `json:"mean_ms"`
	MaxMS  float64          `json:"max_ms"`
	Bucket map[string]int64 `json:"buckets"`
}

// Snapshot returns the current histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Count:  h.count,
		SumMS:  float64(h.sum) / float64(time.Millisecond),
		MaxMS:  float64(h.max) / float64(time.Millisecond),
		Bucket: make(map[string]int64, len(h.buckets)),
	}
	if h.count > 0 {
		s.MeanMS = s.SumMS / float64(h.count)
	}
	for i, n := range h.buckets {
		if n > 0 {
			s.Bucket[bucketLabels[i]] = n
		}
	}
	return s
}

// intBucketBounds are the IntHistogram's inclusive upper bounds;
// observations above the last bound land in the overflow bucket. Powers
// of two match the natural spread of batch sizes and queue depths.
var intBucketBounds = [...]int64{1, 2, 4, 8, 16, 32, 64, 128}

// numIntBuckets is len(intBucketBounds) + 1 (the overflow bucket).
const numIntBuckets = 9

var intBucketLabels = [numIntBuckets]string{
	"le_1", "le_2", "le_4", "le_8", "le_16", "le_32", "le_64", "le_128", "inf",
}

// IntHistogram accumulates dimensionless integer observations — batch
// sizes, queue depths — into fixed power-of-two buckets.
type IntHistogram struct {
	mu      sync.Mutex
	count   int64
	sum     int64
	max     int64
	buckets [numIntBuckets]int64
}

// Observe records one value (negatives are clamped to zero).
func (h *IntHistogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := 0
	for i < len(intBucketBounds) && v > intBucketBounds[i] {
		i++
	}
	h.mu.Lock()
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.buckets[i]++
	h.mu.Unlock()
}

// IntHistogramSnapshot is a point-in-time, JSON-encodable view.
type IntHistogramSnapshot struct {
	Count  int64            `json:"count"`
	Sum    int64            `json:"sum"`
	Mean   float64          `json:"mean"`
	Max    int64            `json:"max"`
	Bucket map[string]int64 `json:"buckets"`
}

// Snapshot returns the current histogram state.
func (h *IntHistogram) Snapshot() IntHistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := IntHistogramSnapshot{
		Count:  h.count,
		Sum:    h.sum,
		Max:    h.max,
		Bucket: make(map[string]int64, len(h.buckets)),
	}
	if h.count > 0 {
		s.Mean = float64(h.sum) / float64(h.count)
	}
	for i, n := range h.buckets {
		if n > 0 {
			s.Bucket[intBucketLabels[i]] = n
		}
	}
	return s
}

// Registry is a named collection of counters, gauges, histograms, and
// timers.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	intHists map[string]*IntHistogram
	timers   map[string]*Timer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		intHists: make(map[string]*IntHistogram),
		timers:   make(map[string]*Timer),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// IntHistogram returns the named integer histogram, creating it on first
// use.
func (r *Registry) IntHistogram(name string) *IntHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.intHists[name]
	if h == nil {
		h = &IntHistogram{}
		r.intHists[name] = h
	}
	return h
}

// Timer returns the named percentile timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.timers[name]
	if t == nil {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// EachCounter calls f for every registered counter with its current value,
// in unspecified order. The registry lock is not held during f.
func (r *Registry) EachCounter(f func(name string, v int64)) {
	r.mu.Lock()
	snap := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		snap[n] = c
	}
	r.mu.Unlock()
	for n, c := range snap {
		f(n, c.Value())
	}
}

// EachGauge calls f for every registered gauge with its current value.
func (r *Registry) EachGauge(f func(name string, v int64)) {
	r.mu.Lock()
	snap := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		snap[n] = g
	}
	r.mu.Unlock()
	for n, g := range snap {
		f(n, g.Value())
	}
}

// EachTimer calls f for every registered timer.
func (r *Registry) EachTimer(f func(name string, t *Timer)) {
	r.mu.Lock()
	snap := make(map[string]*Timer, len(r.timers))
	for n, t := range r.timers {
		snap[n] = t
	}
	r.mu.Unlock()
	for n, t := range snap {
		f(n, t)
	}
}

// EachIntHistogram calls f for every registered integer histogram.
func (r *Registry) EachIntHistogram(f func(name string, h *IntHistogram)) {
	r.mu.Lock()
	snap := make(map[string]*IntHistogram, len(r.intHists))
	for n, h := range r.intHists {
		snap[n] = h
	}
	r.mu.Unlock()
	for n, h := range snap {
		f(n, h)
	}
}

// Snapshot returns a JSON-encodable view of every registered metric:
// counters as integers, histograms as HistogramSnapshot values. Names are
// deterministic (map iteration order does not leak into encoded output
// because encoding/json sorts keys).
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.intHists)+len(r.timers))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name] = h.Snapshot()
	}
	for name, h := range r.intHists {
		out[name] = h.Snapshot()
	}
	for name, t := range r.timers {
		out[name] = t.Snapshot()
	}
	return out
}

// Names returns the registered metric names, sorted (for tests and
// human-readable dumps).
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.intHists)+len(r.timers))
	for n := range r.counters {
		out = append(out, n)
	}
	for n := range r.gauges {
		out = append(out, n)
	}
	for n := range r.hists {
		out = append(out, n)
	}
	for n := range r.intHists {
		out = append(out, n)
	}
	for n := range r.timers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

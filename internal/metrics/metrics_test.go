package metrics

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Inc()
	g.Inc()
	g.Dec()
	g.Add(10)
	if got := g.Value(); got != 11 {
		t.Fatalf("gauge = %d, want 11", got)
	}
	g.Set(-3)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(50 * time.Microsecond)  // le_100us
	h.Observe(500 * time.Microsecond) // le_1ms
	h.Observe(2 * time.Millisecond)   // le_10ms
	h.Observe(time.Minute)            // inf
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d", s.Count)
	}
	for _, b := range []string{"le_100us", "le_1ms", "le_10ms", "inf"} {
		if s.Bucket[b] != 1 {
			t.Errorf("bucket %s = %d, want 1 (%v)", b, s.Bucket[b], s.Bucket)
		}
	}
	if s.MaxMS < 59_000 {
		t.Errorf("max_ms = %v", s.MaxMS)
	}
	if s.MeanMS <= 0 {
		t.Errorf("mean_ms = %v", s.MeanMS)
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("queries").Add(3)
	r.Gauge("inflight").Set(2)
	r.Histogram("latency").Observe(time.Millisecond)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back["queries"].(float64) != 3 {
		t.Errorf("queries = %v", back["queries"])
	}
	if back["inflight"].(float64) != 2 {
		t.Errorf("inflight = %v", back["inflight"])
	}
	lat := back["latency"].(map[string]any)
	if lat["count"].(float64) != 1 {
		t.Errorf("latency count = %v", lat["count"])
	}
	names := r.Names()
	if len(names) != 3 || names[0] != "inflight" || names[1] != "latency" || names[2] != "queries" {
		t.Errorf("names = %v", names)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d", got)
	}
	if got := r.Histogram("h").Snapshot().Count; got != 8000 {
		t.Fatalf("histogram count = %d", got)
	}
}

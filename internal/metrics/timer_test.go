package metrics

import (
	"math"
	"os"
	"sync"
	"testing"
	"time"
)

// TestTimerQuantileAccuracy feeds a known distribution and checks the
// estimated percentiles stay within the bucket scheme's documented ±6%
// relative error.
func TestTimerQuantileAccuracy(t *testing.T) {
	var tm Timer
	// 1..10000 µs uniformly: pXX is XX% of 10ms.
	for i := 1; i <= 10000; i++ {
		tm.Observe(time.Duration(i) * time.Microsecond)
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 5 * time.Millisecond},
		{0.95, 9500 * time.Microsecond},
		{0.99, 9900 * time.Microsecond},
	}
	for _, c := range checks {
		got := tm.Quantile(c.q)
		rel := math.Abs(float64(got-c.want)) / float64(c.want)
		if rel > 0.061 {
			t.Errorf("Quantile(%v) = %v, want %v ±6%% (off by %.1f%%)", c.q, got, c.want, rel*100)
		}
	}
	s := tm.Snapshot()
	if s.Count != 10000 {
		t.Errorf("Count = %d", s.Count)
	}
	if s.MaxMS < 9.99 || s.MaxMS > 10.01 {
		t.Errorf("MaxMS = %v", s.MaxMS)
	}
	if s.P50MS <= 0 || s.P95MS < s.P50MS || s.P99MS < s.P95MS {
		t.Errorf("percentiles not monotone: %+v", s)
	}
}

// TestTimerWideSpread covers the nanosecond-to-seconds spread the engine
// actually produces: quantiles must separate a fast mode from a slow tail.
func TestTimerWideSpread(t *testing.T) {
	var tm Timer
	for i := 0; i < 950; i++ {
		tm.Observe(300 * time.Nanosecond) // cached point queries
	}
	for i := 0; i < 50; i++ {
		tm.Observe(2 * time.Second) // cold DAG inference
	}
	if p50 := tm.Quantile(0.50); p50 > 2*time.Microsecond {
		t.Errorf("p50 = %v, want sub-microsecond bucket", p50)
	}
	p99 := tm.Quantile(0.99)
	if p99 < 1800*time.Millisecond || p99 > 2200*time.Millisecond {
		t.Errorf("p99 = %v, want ~2s", p99)
	}
}

func TestTimerEdgeCases(t *testing.T) {
	var tm Timer
	if got := tm.Quantile(0.99); got != 0 {
		t.Errorf("empty timer quantile = %v", got)
	}
	s := tm.Snapshot()
	if s.Count != 0 || s.P99MS != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
	tm.Observe(-time.Second) // clamps to zero, lands in underflow bucket
	tm.Observe(time.Hour)    // beyond the last finite bucket: overflow
	if got := tm.Quantile(1.0); got != time.Hour {
		t.Errorf("overflow quantile = %v, want capped at observed max", got)
	}
	if got := tm.Count(); got != 2 {
		t.Errorf("count = %d", got)
	}
}

func TestTimerConcurrent(t *testing.T) {
	var tm Timer
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tm.Observe(time.Duration(1+i%100) * time.Millisecond)
			}
		}(g)
	}
	wg.Wait()
	if got := tm.Count(); got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
	if p50 := tm.Quantile(0.5); p50 < 40*time.Millisecond || p50 > 60*time.Millisecond {
		t.Errorf("concurrent p50 = %v, want ~50ms", p50)
	}
}

func TestRegistryTimerAndVisitors(t *testing.T) {
	r := NewRegistry()
	r.Timer("lat").Observe(5 * time.Millisecond)
	r.Counter("c").Add(3)
	r.Gauge("g").Set(7)
	if r.Timer("lat").Count() != 1 {
		t.Fatal("Timer not interned by name")
	}
	snap := r.Snapshot()
	ts, ok := snap["lat"].(TimerSnapshot)
	if !ok || ts.Count != 1 {
		t.Fatalf("snapshot timer = %#v", snap["lat"])
	}
	var names []string
	r.EachTimer(func(n string, tm *Timer) { names = append(names, n) })
	if len(names) != 1 || names[0] != "lat" {
		t.Errorf("EachTimer names = %v", names)
	}
	counters := map[string]int64{}
	r.EachCounter(func(n string, v int64) { counters[n] = v })
	if counters["c"] != 3 {
		t.Errorf("EachCounter = %v", counters)
	}
	gauges := map[string]int64{}
	r.EachGauge(func(n string, v int64) { gauges[n] = v })
	if gauges["g"] != 7 {
		t.Errorf("EachGauge = %v", gauges)
	}
	found := false
	for _, n := range r.Names() {
		if n == "lat" {
			found = true
		}
	}
	if !found {
		t.Errorf("Names missing timer: %v", r.Names())
	}
}

func TestSampleRuntime(t *testing.T) {
	r := NewRegistry()
	SampleRuntime(r)
	if r.Gauge("runtime_goroutines").Value() < 1 {
		t.Error("runtime_goroutines not sampled")
	}
	if r.Gauge("runtime_heap_alloc_bytes").Value() <= 0 {
		t.Error("runtime_heap_alloc_bytes not sampled")
	}
	// OS gauges are best-effort; on Linux both must be present and sane.
	if _, err := os.Stat("/proc/self/statm"); err == nil {
		if r.Gauge("os_rss_bytes").Value() <= 0 {
			t.Error("os_rss_bytes not sampled despite /proc")
		}
		if r.Gauge("os_open_fds").Value() <= 0 {
			t.Error("os_open_fds not sampled despite /proc")
		}
	}
}

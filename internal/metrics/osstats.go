package metrics

import (
	"os"
	"runtime"
	"strconv"
	"strings"
)

// SampleRuntime refreshes the process-level gauges in r: Go runtime
// occupancy (heap, GC, goroutines) plus OS-level resource usage (resident
// set size, open file descriptors) read from /proc. A platform without
// /proc simply never registers the OS gauges — sampling must degrade, not
// fail, because it runs on every telemetry flush and every GET /metrics.
func SampleRuntime(r *Registry) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("runtime_heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	r.Gauge("runtime_heap_sys_bytes").Set(int64(ms.HeapSys))
	r.Gauge("runtime_gc_pause_total_ns").Set(int64(ms.PauseTotalNs))
	r.Gauge("runtime_num_gc").Set(int64(ms.NumGC))
	r.Gauge("runtime_goroutines").Set(int64(runtime.NumGoroutine()))
	if rss := readRSSBytes(); rss > 0 {
		r.Gauge("os_rss_bytes").Set(rss)
	}
	if fds := countOpenFDs(); fds >= 0 {
		r.Gauge("os_open_fds").Set(fds)
	}
}

// readRSSBytes reports the resident set size from /proc/self/statm
// (second field, in pages), or 0 when unavailable.
func readRSSBytes() int64 {
	b, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(b))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * int64(os.Getpagesize())
}

// countOpenFDs reports the number of open file descriptors from
// /proc/self/fd, or -1 when unavailable.
func countOpenFDs() int64 {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	// The ReadDir handle itself is open during the listing; don't count it.
	return int64(len(ents) - 1)
}

package metrics

import (
	"math"
	"sync/atomic"
	"time"
)

// Timer is a percentile-capable latency histogram. Where Histogram's seven
// decade buckets are enough for a coarse shape, Timer records observations
// into fine-grained exponential buckets (timerPerDecade per decade between
// 1µs and 1000s) so p50/p95/p99 can be read back with a bounded relative
// error of about ±6% — tight enough that a 263ns cached point query and a
// multi-second cold DAG inference land ten decades of buckets apart.
//
// Observations are lock-free: one atomic add into the bucket array plus
// atomic count/sum/max updates, so the request path never serializes on a
// mutex even with many goroutines timing concurrently.
type Timer struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
	buckets [timerBuckets]atomic.Int64
}

const (
	// timerMinNS is the lower edge of the first finite bucket: durations
	// at or below 1µs share the underflow bucket (they are all "free" at
	// serving granularity).
	timerMinNS = 1e3
	// timerPerDecade buckets per factor-of-ten gives bucket boundaries at
	// ratio 10^(1/20) ≈ 1.122; reporting the geometric bucket midpoint
	// bounds the quantile's relative error by 10^(1/40)-1 ≈ 5.9%.
	timerPerDecade = 20
	// timerDecades spans 1µs .. 1000s.
	timerDecades = 9
	// timerBuckets = underflow + finite buckets + overflow.
	timerBuckets = 1 + timerPerDecade*timerDecades + 1
)

// timerIndex maps a duration to its bucket.
func timerIndex(d time.Duration) int {
	ns := float64(d.Nanoseconds())
	if ns <= timerMinNS {
		return 0
	}
	i := 1 + int(math.Log10(ns/timerMinNS)*timerPerDecade)
	if i >= timerBuckets-1 {
		return timerBuckets - 1
	}
	return i
}

// timerBucketMidNS returns the geometric midpoint of bucket i in
// nanoseconds (the value reported for quantiles landing in it).
func timerBucketMidNS(i int) float64 {
	switch {
	case i <= 0:
		return timerMinNS
	case i >= timerBuckets-1:
		return timerMinNS * math.Pow(10, timerDecades)
	}
	// Bucket i covers (10^((i-1)/P), 10^(i/P)] · timerMinNS; midpoint at
	// exponent (i-0.5)/P.
	return timerMinNS * math.Pow(10, (float64(i)-0.5)/timerPerDecade)
}

// Observe records one duration (negatives clamp to zero).
func (t *Timer) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.count.Add(1)
	t.sum.Add(int64(d))
	for {
		cur := t.max.Load()
		if int64(d) <= cur || t.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	t.buckets[timerIndex(d)].Add(1)
}

// Count returns the number of observations.
func (t *Timer) Count() int64 { return t.count.Load() }

// Quantile returns an estimate of the q-quantile (0 < q <= 1) of all
// observations so far, or 0 when nothing was observed. Concurrent
// observations may skew an in-flight read by at most the races' own
// durations — fine for monitoring, which is the only caller.
func (t *Timer) Quantile(q float64) time.Duration {
	n := t.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < timerBuckets; i++ {
		cum += t.buckets[i].Load()
		if cum >= rank {
			if i == timerBuckets-1 {
				// Overflow bucket: the midpoint is meaningless; the
				// observed maximum is the only honest answer.
				return time.Duration(t.max.Load())
			}
			mid := time.Duration(timerBucketMidNS(i))
			// Never report a quantile above the observed maximum: the top
			// bucket's midpoint can exceed it.
			if max := time.Duration(t.max.Load()); mid > max {
				return max
			}
			return mid
		}
	}
	return time.Duration(t.max.Load())
}

// TimerSnapshot is a point-in-time, JSON-encodable timer view. All
// durations are reported in milliseconds; the percentile fields are the
// JSON face of Quantile.
type TimerSnapshot struct {
	Count  int64   `json:"count"`
	SumMS  float64 `json:"sum_ms"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// Snapshot returns the current timer state with p50/p95/p99.
func (t *Timer) Snapshot() TimerSnapshot {
	n := t.count.Load()
	s := TimerSnapshot{
		Count: n,
		SumMS: float64(t.sum.Load()) / float64(time.Millisecond),
		MaxMS: float64(t.max.Load()) / float64(time.Millisecond),
	}
	if n == 0 {
		return s
	}
	s.MeanMS = s.SumMS / float64(n)
	s.P50MS = float64(t.Quantile(0.50)) / float64(time.Millisecond)
	s.P95MS = float64(t.Quantile(0.95)) / float64(time.Millisecond)
	s.P99MS = float64(t.Quantile(0.99)) / float64(time.Millisecond)
	return s
}

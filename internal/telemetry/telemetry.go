// Package telemetry pushes the server's metrics registry to a
// StatsD/Graphite sink on a fixed interval. The exporter runs entirely
// on its own goroutine: the request path only ever touches lock-free
// counters and timers, and a slow, unreachable, or flapping sink costs
// nothing but a dropped-flush counter — the flush loop dials lazily,
// drops the payload on any error, and retries the connection on the
// next tick.
//
// Over UDP the wire format is the classic StatsD line protocol:
//
//	pxmld.http_requests:12|c        counters (delta since last flush)
//	pxmld.http_inflight:3|g         gauges (current level)
//	pxmld.http_latency.p99_ms:8.1|g timer percentiles, exported as gauges
//
// Counters are sent as deltas so the sink can sum across restarts;
// timers flatten to .count/.mean_ms/.p50_ms/.p95_ms/.p99_ms/.max_ms
// gauges, which is how percentile sketches travel over plain StatsD
// without a histogram extension.
//
// Over TCP (Network "tcp") the exporter instead speaks the Graphite
// plaintext protocol — "name value unix_ts\n" — and batches the whole
// registry, timer percentiles included, into one buffer written with a
// single conn.Write per flush. Large registries (hundreds of
// per-endpoint and per-shape timers) would otherwise fragment into many
// MTU-sized packets and many small writes; one buffered write keeps the
// flush O(1) syscalls and lets the sink ingest the batch atomically.
// Counters are sent cumulative on TCP, the Graphite convention (derive
// rates at query time with nonNegativeDerivative).
package telemetry

import (
	"fmt"
	"log/slog"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"pxml/internal/metrics"
)

// maxDatagram bounds one UDP payload. 1400 stays under the common
// 1500-byte Ethernet MTU with headroom for IP/UDP headers, so flushes
// are never silently truncated by fragmentation loss.
const maxDatagram = 1400

// Config assembles an Exporter.
type Config struct {
	// Addr is the sink's host:port. Required.
	Addr string
	// Network is "udp" (default) or "tcp".
	Network string
	// Prefix namespaces every metric name; default "pxmld".
	Prefix string
	// Interval between flushes; default 10s, minimum 10ms.
	Interval time.Duration
	// Registry is the metric source. Required.
	Registry *metrics.Registry
	// Sample, when set, runs before each flush snapshot — the hook for
	// metrics.SampleRuntime so OS/runtime gauges are current on every
	// flush without the server polling separately.
	Sample func()
	// Dial overrides net.Dial, the seam for fault injection in tests.
	Dial func(network, addr string) (net.Conn, error)
	// DialTimeout bounds one dial attempt; default 2s.
	DialTimeout time.Duration
	// Logger, when set, records connection transitions (never per-flush
	// chatter).
	Logger *slog.Logger

	// nowUnix stubs the Graphite line timestamp in tests.
	nowUnix func() int64
}

// Exporter owns the flush loop. Create with New, start with Start, stop
// with Stop (which attempts one final flush).
type Exporter struct {
	cfg  Config
	mu   sync.Mutex // guards conn, last, and Flush itself
	conn net.Conn
	last map[string]int64 // counter values at previous flush, for deltas

	// Self-observation lives in the same registry it exports, so the
	// sink (and /v1/metrics) sees the exporter's own health.
	flushes *metrics.Counter
	drops   *metrics.Counter
	bytes   *metrics.Counter

	stop chan struct{}
	done chan struct{}
}

// New validates cfg and returns an unstarted exporter.
func New(cfg Config) (*Exporter, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("telemetry: sink address required")
	}
	if cfg.Registry == nil {
		return nil, fmt.Errorf("telemetry: registry required")
	}
	if cfg.Network == "" {
		cfg.Network = "udp"
	}
	if cfg.Network != "udp" && cfg.Network != "tcp" {
		return nil, fmt.Errorf("telemetry: network %q not supported (udp or tcp)", cfg.Network)
	}
	if cfg.Prefix == "" {
		cfg.Prefix = "pxmld"
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Second
	}
	if cfg.Interval < 10*time.Millisecond {
		cfg.Interval = 10 * time.Millisecond
	}
	if cfg.Dial == nil {
		cfg.Dial = net.Dial
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.nowUnix == nil {
		cfg.nowUnix = func() int64 { return time.Now().Unix() }
	}
	return &Exporter{
		cfg:     cfg,
		last:    make(map[string]int64),
		flushes: cfg.Registry.Counter("telemetry_flushes"),
		drops:   cfg.Registry.Counter("telemetry_dropped_flushes"),
		bytes:   cfg.Registry.Counter("telemetry_bytes"),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}, nil
}

// Start launches the flush loop.
func (e *Exporter) Start() {
	go func() {
		defer close(e.done)
		t := time.NewTicker(e.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				e.Flush()
			case <-e.stop:
				return
			}
		}
	}()
}

// Stop halts the loop, attempts one final flush, and closes the
// connection. Safe to call once.
func (e *Exporter) Stop() {
	close(e.stop)
	<-e.done
	e.Flush()
	e.mu.Lock()
	if e.conn != nil {
		e.conn.Close()
		e.conn = nil
	}
	e.mu.Unlock()
}

// Flush snapshots the registry and pushes one batch to the sink. Any
// dial or write failure drops the batch (counted in
// telemetry_dropped_flushes) and resets the connection for the next
// attempt; it never blocks beyond the dial timeout and never panics the
// caller. Exposed for the smoke harness; the loop calls it on each tick.
func (e *Exporter) Flush() {
	if e.cfg.Sample != nil {
		e.cfg.Sample()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var packets [][]byte
	if e.cfg.Network == "tcp" {
		// One Graphite plaintext batch, one write: large registries flush
		// in a single syscall instead of one write per MTU-sized packet.
		payload := e.collectGraphite(e.cfg.nowUnix())
		if len(payload) == 0 {
			return
		}
		packets = [][]byte{payload}
	} else {
		lines := e.collect()
		if len(lines) == 0 {
			return
		}
		packets = packLines(lines, e.payloadLimit())
	}
	if e.conn == nil {
		conn, err := e.dial()
		if err != nil {
			e.drops.Inc()
			return
		}
		e.conn = conn
	}
	sent := 0
	for _, packet := range packets {
		n, err := e.conn.Write(packet)
		if err != nil {
			e.conn.Close()
			e.conn = nil
			e.drops.Inc()
			if e.cfg.Logger != nil {
				e.cfg.Logger.Warn("telemetry sink write failed; dropping flush",
					"addr", e.cfg.Addr, "error", err)
			}
			return
		}
		sent += n
	}
	e.flushes.Inc()
	e.bytes.Add(int64(sent))
}

// payloadLimit: UDP flushes must fit datagrams; TCP is a stream.
func (e *Exporter) payloadLimit() int {
	if e.cfg.Network == "udp" {
		return maxDatagram
	}
	return 1 << 20
}

func (e *Exporter) dial() (net.Conn, error) {
	type result struct {
		conn net.Conn
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		c, err := e.cfg.Dial(e.cfg.Network, e.cfg.Addr)
		ch <- result{c, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil && e.cfg.Logger != nil {
			e.cfg.Logger.Warn("telemetry sink unreachable; dropping flush",
				"addr", e.cfg.Addr, "error", r.err)
		}
		return r.conn, r.err
	case <-time.After(e.cfg.DialTimeout):
		// Abandon the dial; if it eventually succeeds the connection is
		// closed by the goroutine to avoid a leak.
		go func() {
			if r := <-ch; r.conn != nil {
				r.conn.Close()
			}
		}()
		return nil, fmt.Errorf("telemetry: dial %s %s: timeout", e.cfg.Network, e.cfg.Addr)
	}
}

// collect renders the registry into statsd lines (caller holds e.mu).
// Lines are sorted so packet layout is deterministic for tests.
func (e *Exporter) collect() []string {
	var lines []string
	reg := e.cfg.Registry
	reg.EachCounter(func(name string, v int64) {
		delta := v - e.last[name]
		e.last[name] = v
		if delta != 0 {
			lines = append(lines, e.line(name, strconv.FormatInt(delta, 10), "c"))
		}
	})
	reg.EachGauge(func(name string, v int64) {
		lines = append(lines, e.line(name, strconv.FormatInt(v, 10), "g"))
	})
	reg.EachTimer(func(name string, t *metrics.Timer) {
		s := t.Snapshot()
		if s.Count == 0 {
			return
		}
		lines = append(lines,
			e.line(name+".count", strconv.FormatInt(s.Count, 10), "g"),
			e.line(name+".mean_ms", formatFloat(s.MeanMS), "g"),
			e.line(name+".p50_ms", formatFloat(s.P50MS), "g"),
			e.line(name+".p95_ms", formatFloat(s.P95MS), "g"),
			e.line(name+".p99_ms", formatFloat(s.P99MS), "g"),
			e.line(name+".max_ms", formatFloat(s.MaxMS), "g"),
		)
	})
	reg.EachIntHistogram(func(name string, h *metrics.IntHistogram) {
		s := h.Snapshot()
		if s.Count == 0 {
			return
		}
		lines = append(lines,
			e.line(name+".count", strconv.FormatInt(s.Count, 10), "g"),
			e.line(name+".mean", formatFloat(s.Mean), "g"),
			e.line(name+".max", strconv.FormatInt(s.Max, 10), "g"),
		)
	})
	sort.Strings(lines)
	return lines
}

// collectGraphite renders the whole registry as one Graphite plaintext
// batch: "prefix.name value ts\n" per metric, sorted by name (caller
// holds e.mu). Counters are cumulative — the Graphite convention —
// which also makes the batch idempotent: a retried flush after a
// dropped one loses no counts.
func (e *Exporter) collectGraphite(ts int64) []byte {
	var lines []string
	reg := e.cfg.Registry
	stamp := strconv.FormatInt(ts, 10)
	add := func(name, value string) {
		lines = append(lines, e.cfg.Prefix+"."+sanitize(name)+" "+value+" "+stamp)
	}
	reg.EachCounter(func(name string, v int64) {
		add(name, strconv.FormatInt(v, 10))
	})
	reg.EachGauge(func(name string, v int64) {
		add(name, strconv.FormatInt(v, 10))
	})
	reg.EachTimer(func(name string, t *metrics.Timer) {
		s := t.Snapshot()
		if s.Count == 0 {
			return
		}
		add(name+".count", strconv.FormatInt(s.Count, 10))
		add(name+".mean_ms", formatFloat(s.MeanMS))
		add(name+".p50_ms", formatFloat(s.P50MS))
		add(name+".p95_ms", formatFloat(s.P95MS))
		add(name+".p99_ms", formatFloat(s.P99MS))
		add(name+".max_ms", formatFloat(s.MaxMS))
	})
	reg.EachIntHistogram(func(name string, h *metrics.IntHistogram) {
		s := h.Snapshot()
		if s.Count == 0 {
			return
		}
		add(name+".count", strconv.FormatInt(s.Count, 10))
		add(name+".mean", formatFloat(s.Mean))
		add(name+".max", strconv.FormatInt(s.Max, 10))
	})
	if len(lines) == 0 {
		return nil
	}
	sort.Strings(lines)
	// One buffer, newline-terminated lines (Graphite requires the
	// trailing newline on the last line too).
	var b strings.Builder
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

func (e *Exporter) line(name, value, kind string) string {
	return e.cfg.Prefix + "." + sanitize(name) + ":" + value + "|" + kind
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'f', -1, 64)
}

// sanitize maps a registry name onto the statsd/graphite-safe charset:
// [A-Za-z0-9_.-], everything else becomes '_'. Dots are kept — registry
// names use them for hierarchy (http_latency.query), which graphite
// renders as a tree.
func sanitize(name string) string {
	clean := true
	for i := 0; i < len(name); i++ {
		if !safeByte(name[i]) {
			clean = false
			break
		}
	}
	if clean {
		return name
	}
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		if safeByte(name[i]) {
			b.WriteByte(name[i])
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

func safeByte(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	case c == '_' || c == '.' || c == '-':
		return true
	}
	return false
}

// packLines joins lines into newline-separated payloads of at most limit
// bytes each (a single oversized line still ships alone rather than
// being dropped).
func packLines(lines []string, limit int) [][]byte {
	var packets [][]byte
	var cur []byte
	for _, l := range lines {
		need := len(l)
		if len(cur) > 0 {
			need++ // newline separator
		}
		if len(cur) > 0 && len(cur)+need > limit {
			packets = append(packets, cur)
			cur = nil
		}
		if len(cur) > 0 {
			cur = append(cur, '\n')
		}
		cur = append(cur, l...)
	}
	if len(cur) > 0 {
		packets = append(packets, cur)
	}
	return packets
}

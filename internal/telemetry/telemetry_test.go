package telemetry

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"pxml/internal/metrics"
)

// memConn is an in-memory net.Conn that records writes and can be set
// to fail, standing in for a statsd sink.
type memConn struct {
	mu     sync.Mutex
	chunks [][]byte
	fail   error
}

func (c *memConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fail != nil {
		return 0, c.fail
	}
	cp := make([]byte, len(b))
	copy(cp, b)
	c.chunks = append(c.chunks, cp)
	return len(b), nil
}

func (c *memConn) setFail(err error) {
	c.mu.Lock()
	c.fail = err
	c.mu.Unlock()
}

func (c *memConn) lines() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for _, ch := range c.chunks {
		for _, l := range strings.Split(string(ch), "\n") {
			if l != "" {
				out = append(out, l)
			}
		}
	}
	return out
}

func (c *memConn) Read([]byte) (int, error)           { return 0, fmt.Errorf("not readable") }
func (c *memConn) Close() error                       { return nil }
func (c *memConn) LocalAddr() net.Addr                { return nil }
func (c *memConn) RemoteAddr() net.Addr               { return nil }
func (c *memConn) SetDeadline(time.Time) error        { return nil }
func (c *memConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *memConn) SetWriteDeadline(t time.Time) error { return nil }

func newTestExporter(t *testing.T, reg *metrics.Registry, dial func(string, string) (net.Conn, error)) *Exporter {
	t.Helper()
	e, err := New(Config{
		Addr:     "sink:8125",
		Registry: reg,
		Dial:     dial,
		Interval: time.Hour, // tests call Flush directly
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestFlushFormatsAndDeltas(t *testing.T) {
	reg := metrics.NewRegistry()
	sink := &memConn{}
	e := newTestExporter(t, reg, func(string, string) (net.Conn, error) { return sink, nil })

	reg.Counter("http_requests").Add(5)
	reg.Gauge("http_inflight").Set(2)
	reg.Timer("http_latency.query").Observe(10 * time.Millisecond)
	e.Flush()

	got := strings.Join(sink.lines(), "\n")
	for _, want := range []string{
		"pxmld.http_requests:5|c",
		"pxmld.http_inflight:2|g",
		"pxmld.http_latency.query.count:1|g",
		"pxmld.http_latency.query.p50_ms:",
		"pxmld.http_latency.query.p95_ms:",
		"pxmld.http_latency.query.p99_ms:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("flush missing %q in:\n%s", want, got)
		}
	}

	// Second flush: counters ship deltas, so an unchanged counter is
	// omitted and an incremented one ships only the increment.
	sink.chunks = nil
	reg.Counter("http_requests").Add(3)
	e.Flush()
	got = strings.Join(sink.lines(), "\n")
	if !strings.Contains(got, "pxmld.http_requests:3|c") {
		t.Errorf("second flush should carry delta 3, got:\n%s", got)
	}
	if strings.Contains(got, "http_requests:5") || strings.Contains(got, "http_requests:8") {
		t.Errorf("second flush shipped absolute value, got:\n%s", got)
	}
}

func TestDeadSinkNeverBlocksAndCountsDrops(t *testing.T) {
	reg := metrics.NewRegistry()
	e := newTestExporter(t, reg, func(string, string) (net.Conn, error) {
		return nil, fmt.Errorf("connection refused")
	})
	reg.Counter("c").Inc()
	start := time.Now()
	e.Flush()
	if d := time.Since(start); d > time.Second {
		t.Fatalf("flush against dead sink took %v", d)
	}
	if got := reg.Counter("telemetry_dropped_flushes").Value(); got != 1 {
		t.Errorf("dropped_flushes = %d, want 1", got)
	}
	if got := reg.Counter("telemetry_flushes").Value(); got != 0 {
		t.Errorf("flushes = %d, want 0", got)
	}
}

func TestHangingDialBoundedByTimeout(t *testing.T) {
	reg := metrics.NewRegistry()
	block := make(chan struct{})
	defer close(block)
	e, err := New(Config{
		Addr:     "sink:8125",
		Registry: reg,
		Interval: time.Hour,
		Dial: func(string, string) (net.Conn, error) {
			<-block // a sink that never completes the handshake
			return nil, fmt.Errorf("never")
		},
		DialTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg.Counter("c").Inc()
	start := time.Now()
	e.Flush()
	if d := time.Since(start); d > time.Second {
		t.Fatalf("flush with hanging dial took %v, want ~50ms", d)
	}
	if reg.Counter("telemetry_dropped_flushes").Value() != 1 {
		t.Error("hanging dial not counted as drop")
	}
}

func TestWriteFailureDropsThenRecovers(t *testing.T) {
	reg := metrics.NewRegistry()
	sink := &memConn{}
	dials := 0
	e := newTestExporter(t, reg, func(string, string) (net.Conn, error) {
		dials++
		return sink, nil
	})
	reg.Counter("c").Inc()
	e.Flush()
	if len(sink.lines()) == 0 {
		t.Fatal("healthy flush wrote nothing")
	}

	// Sink dies mid-run: the flush drops, the conn resets.
	sink.setFail(fmt.Errorf("broken pipe"))
	reg.Counter("c").Inc()
	e.Flush()
	if reg.Counter("telemetry_dropped_flushes").Value() != 1 {
		t.Error("write failure not counted")
	}

	// Sink recovers: next flush redials and delivers.
	sink.setFail(nil)
	sink.chunks = nil
	reg.Counter("c").Inc()
	e.Flush()
	if dials != 2 {
		t.Errorf("dials = %d, want redial after write failure", dials)
	}
	if len(sink.lines()) == 0 {
		t.Error("flush after recovery wrote nothing")
	}
}

func TestStartStopLoopDelivers(t *testing.T) {
	reg := metrics.NewRegistry()
	sink := &memConn{}
	sampled := 0
	e, err := New(Config{
		Addr:     "sink:8125",
		Registry: reg,
		Interval: 10 * time.Millisecond,
		Dial:     func(string, string) (net.Conn, error) { return sink, nil },
		Sample:   func() { sampled++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	reg.Counter("c").Inc()
	e.Start()
	deadline := time.Now().Add(2 * time.Second)
	for len(sink.lines()) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	e.Stop()
	if len(sink.lines()) == 0 {
		t.Fatal("loop never flushed")
	}
	if sampled == 0 {
		t.Error("Sample hook never ran")
	}
}

func TestUDPPacketSplitting(t *testing.T) {
	reg := metrics.NewRegistry()
	sink := &memConn{}
	e := newTestExporter(t, reg, func(string, string) (net.Conn, error) { return sink, nil })
	// Enough gauges that one datagram cannot hold them all.
	for i := 0; i < 200; i++ {
		reg.Gauge(fmt.Sprintf("very_long_gauge_name_for_packet_splitting_%03d", i)).Set(int64(i))
	}
	e.Flush()
	if len(sink.chunks) < 2 {
		t.Fatalf("expected multiple datagrams, got %d", len(sink.chunks))
	}
	total := 0
	for _, ch := range sink.chunks {
		if len(ch) > maxDatagram {
			t.Errorf("datagram of %d bytes exceeds %d", len(ch), maxDatagram)
		}
		total += len(strings.Split(string(ch), "\n"))
	}
	if total != 200 {
		t.Errorf("lines across datagrams = %d, want 200", total)
	}
}

func TestRealUDPSink(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skip("no loopback UDP:", err)
	}
	defer pc.Close()
	reg := metrics.NewRegistry()
	e, err := New(Config{Addr: pc.LocalAddr().String(), Registry: reg, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	reg.Counter("real").Add(7)
	e.Flush()
	pc.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 65536)
	n, _, err := pc.ReadFrom(buf)
	if err != nil {
		t.Fatal("sink received nothing:", err)
	}
	if got := string(buf[:n]); !strings.Contains(got, "pxmld.real:7|c") {
		t.Errorf("datagram = %q", got)
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"http_latency.query": "http_latency.query",
		"shed tenant:a":      "shed_tenant_a",
		"weird|pipe":         "weird_pipe",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Registry: metrics.NewRegistry()}); err == nil {
		t.Error("New accepted empty addr")
	}
	if _, err := New(Config{Addr: "x:1"}); err == nil {
		t.Error("New accepted nil registry")
	}
	if _, err := New(Config{Addr: "x:1", Registry: metrics.NewRegistry(), Network: "sctp"}); err == nil {
		t.Error("New accepted unsupported network")
	}
}

func TestGraphiteTCPBatchesOneWrite(t *testing.T) {
	reg := metrics.NewRegistry()
	sink := &memConn{}
	e, err := New(Config{
		Addr:     "sink:2003",
		Network:  "tcp",
		Registry: reg,
		Dial:     func(string, string) (net.Conn, error) { return sink, nil },
		Interval: time.Hour,
		nowUnix:  func() int64 { return 1754600000 },
	})
	if err != nil {
		t.Fatal(err)
	}

	reg.Counter("http_requests").Add(5)
	reg.Gauge("http_inflight").Set(2)
	reg.Timer("http_latency.query").Observe(10 * time.Millisecond)
	e.Flush()

	// The whole registry ships as ONE write — a single plaintext batch,
	// not one packet per MTU.
	if len(sink.chunks) != 1 {
		t.Fatalf("tcp flush made %d writes, want 1", len(sink.chunks))
	}
	payload := string(sink.chunks[0])
	if !strings.HasSuffix(payload, "\n") {
		t.Error("Graphite batch must end with a trailing newline")
	}
	for _, want := range []string{
		"pxmld.http_requests 5 1754600000\n",
		"pxmld.http_inflight 2 1754600000\n",
		"pxmld.http_latency.query.count 1 1754600000\n",
	} {
		if !strings.Contains(payload, want) {
			t.Errorf("batch missing %q in:\n%s", want, payload)
		}
	}
	if strings.Contains(payload, "|c") || strings.Contains(payload, "|g") || strings.Contains(payload, ":") {
		t.Errorf("tcp batch leaked statsd framing:\n%s", payload)
	}
	lines := strings.Split(strings.TrimSuffix(payload, "\n"), "\n")
	for i, l := range lines {
		if got := len(strings.Fields(l)); got != 3 {
			t.Errorf("line %q has %d fields, want 3 (name value timestamp)", l, got)
		}
		if i > 0 && lines[i-1] > l {
			t.Errorf("batch not sorted: %q before %q", lines[i-1], l)
		}
	}

	// Graphite carries cumulative counters, not statsd deltas: after
	// another increment the next batch reports the running total.
	sink.chunks = nil
	reg.Counter("http_requests").Add(3)
	e.Flush()
	if len(sink.chunks) != 1 {
		t.Fatalf("second tcp flush made %d writes, want 1", len(sink.chunks))
	}
	if got := string(sink.chunks[0]); !strings.Contains(got, "pxmld.http_requests 8 1754600000\n") {
		t.Errorf("second batch should carry cumulative 8, got:\n%s", got)
	}

	// A fresh registry is never empty — the exporter self-observes — and
	// Graphite counters ship cumulatively even at zero, so the batch
	// carries the exporter's own health metrics from the first flush.
	fresh, err := New(Config{
		Addr:     "sink:2003",
		Network:  "tcp",
		Registry: metrics.NewRegistry(),
		Dial:     func(string, string) (net.Conn, error) { return sink, nil },
		Interval: time.Hour,
		nowUnix:  func() int64 { return 1754600000 },
	})
	if err != nil {
		t.Fatal(err)
	}
	sink.chunks = nil
	fresh.Flush()
	if len(sink.chunks) != 1 {
		t.Fatalf("fresh registry flush made %d writes, want 1", len(sink.chunks))
	}
	if got := string(sink.chunks[0]); !strings.Contains(got, "pxmld.telemetry_flushes 0 1754600000\n") {
		t.Errorf("fresh batch should carry the exporter's own counters at zero, got:\n%s", got)
	}
}

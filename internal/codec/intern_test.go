package codec

import (
	"testing"

	"pxml/internal/core"
	"pxml/internal/sets"
)

func internTestInstance(t *testing.T) *core.ProbInstance {
	t.Helper()
	ld := core.NewLoader("r", 8)
	ld.AddObject("r")
	ld.AddObject("a")
	ld.AddObject("b")
	ld.SetEdges("r", "child", sets.FromSorted([]string{"a", "b"}), 1, 2)
	pi, err := ld.Instance()
	if err != nil {
		t.Fatalf("instance: %v", err)
	}
	return pi
}

func TestCheckBinary(t *testing.T) {
	pi := internTestInstance(t)
	rec := AppendBinary(nil, pi)
	if err := CheckBinary(rec); err != nil {
		t.Fatalf("CheckBinary on valid record: %v", err)
	}
	// Flip a body byte: frame CRC must catch it without decoding.
	bad := append([]byte(nil), rec...)
	bad[len(bad)/2] ^= 0xff
	if err := CheckBinary(bad); err == nil {
		t.Fatal("CheckBinary accepted corrupt record")
	}
	if err := CheckBinary(rec[:3]); err == nil {
		t.Fatal("CheckBinary accepted truncated record")
	}
}

func TestDecodeBinaryInterned(t *testing.T) {
	pi := internTestInstance(t)
	rec := AppendBinary(nil, pi)
	in := NewInterner()
	a, err := DecodeBinaryBytesInterned(rec, in)
	if err != nil {
		t.Fatalf("interned decode: %v", err)
	}
	b, err := DecodeBinaryBytesInterned(rec, in)
	if err != nil {
		t.Fatalf("second interned decode: %v", err)
	}
	if a.Root() != b.Root() || a.NumObjects() != b.NumObjects() {
		t.Fatal("interned decodes disagree")
	}
	if in.Len() == 0 {
		t.Fatal("interner saw no strings")
	}
	// Same text must resolve to the same canonical allocation.
	if s1, s2 := in.Intern([]byte("child")), in.InternString("child"); s1 != s2 {
		t.Fatal("intern mismatch")
	}
	// Interned output must equal the plain decode byte for byte.
	plain, err := DecodeBinaryBytes(rec)
	if err != nil {
		t.Fatalf("plain decode: %v", err)
	}
	if got, want := string(AppendBinary(nil, a)), string(AppendBinary(nil, plain)); got != want {
		t.Fatal("interned decode round-trip differs from plain decode")
	}
}

package codec

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"pxml/internal/core"
	"pxml/internal/gen"
)

// depth9 returns the generated depth-9, branch-2 fixture the repo's
// Figure 7 benchmarks use (1023 objects, 2^2-entry OPFs), memoized so
// every codec benchmark serializes the identical instance.
var depth9 = sync.OnceValue(func() *core.ProbInstance {
	in, err := gen.Generate(gen.Config{Depth: 9, Branch: 2, Labeling: gen.FR, Seed: 8, LeafDomainSize: 2, LabelsPerLevel: 4})
	if err != nil {
		panic(err)
	}
	return in.PI
})

func BenchmarkEncodeText(b *testing.B) {
	pi := depth9()
	var buf bytes.Buffer
	if err := EncodeText(&buf, pi); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := EncodeText(io.Discard, pi); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeBinary(b *testing.B) {
	pi := depth9()
	b.SetBytes(int64(len(AppendBinary(nil, pi))))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := EncodeBinary(io.Discard, pi); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeText(b *testing.B) {
	var buf bytes.Buffer
	if err := EncodeText(&buf, depth9()); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeText(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeBinary(b *testing.B) {
	data := AppendBinary(nil, depth9())
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBinaryBytes(data); err != nil {
			b.Fatal(err)
		}
	}
}

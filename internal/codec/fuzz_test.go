package codec

import (
	"bytes"
	"strings"
	"testing"

	"pxml/internal/core"
	"pxml/internal/fixtures"
)

// FuzzDecodeText asserts the text decoder never panics on arbitrary input
// and that anything it accepts round-trips stably (decode → encode →
// decode reproduces the same instance).
func FuzzDecodeText(f *testing.F) {
	var seed bytes.Buffer
	if err := EncodeText(&seed, fixtures.Figure2()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("pxml/1\nroot r\n")
	f.Add("pxml/1\nroot r\nlch r l 0 1 x\nopf r 0.5 x\nopf r 0.5\n")
	f.Add("pxml/1\nroot r\ntype t a b\nleaf x t a\nvpf x 1 a\nobj y\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, in string) {
		pi, err := DecodeText(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodeText(&buf, pi); err != nil {
			// Decoded instances may contain tokens the encoder rejects
			// only if the decoder let whitespace through, which it cannot
			// (it splits on whitespace); any other failure is a bug.
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := DecodeText(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v\n%s", err, buf.String())
		}
		if !core.Equal(pi, again, 1e-9) {
			t.Fatalf("round trip unstable:\nfirst:  %v\nsecond: %v", pi.Objects(), again.Objects())
		}
	})
}

// FuzzDecodeBinary asserts the binary decoder never panics on arbitrary
// bytes and that anything it accepts round-trips stably through both the
// binary and the text codec (format parity).
func FuzzDecodeBinary(f *testing.F) {
	var seed bytes.Buffer
	if err := EncodeBinary(&seed, fixtures.Figure2VariedLeaves()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	var tiny bytes.Buffer
	if err := EncodeBinary(&tiny, core.NewProbInstance("r")); err != nil {
		f.Fatal(err)
	}
	f.Add(tiny.Bytes())
	f.Add([]byte("PXB1"))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, in []byte) {
		pi, err := DecodeBinaryBytes(in)
		if err != nil {
			return
		}
		again := roundTripBinary(t, pi)
		if !core.Equal(pi, again, 1e-9) {
			t.Fatalf("binary round trip unstable:\nfirst:  %v\nsecond: %v", pi.Objects(), again.Objects())
		}
		// Parity: a binary-accepted instance must survive the text codec,
		// provided every token is text-representable (binary permits
		// whitespace and empty strings the line format cannot carry).
		if !textRepresentable(pi) {
			return
		}
		var txt bytes.Buffer
		if err := EncodeText(&txt, pi); err != nil {
			t.Fatalf("text encode of clean instance failed: %v", err)
		}
		viaText, err := DecodeText(&txt)
		if err != nil {
			t.Fatalf("text re-decode failed: %v\n%s", err, txt.String())
		}
		if !core.Equal(pi, viaText, 1e-9) {
			t.Fatal("binary/text parity violated")
		}
	})
}

// textRepresentable reports whether every token of the instance survives
// the whitespace-delimited text format, including the OPF set members and
// VPF values the text encoder does not itself re-check.
func textRepresentable(pi *core.ProbInstance) bool {
	clean := func(s string) bool { return checkToken(s) == nil }
	for name, typ := range pi.Types() {
		if !clean(name) {
			return false
		}
		for _, v := range typ.Domain {
			if !clean(v) {
				return false
			}
		}
	}
	for _, o := range pi.Objects() {
		if !clean(o) {
			return false
		}
		for _, l := range pi.Labels(o) {
			if !clean(l) {
				return false
			}
		}
		if w := pi.OPF(o); w != nil {
			for _, e := range w.Entries() {
				for _, m := range e.Set {
					if !clean(m) {
						return false
					}
				}
			}
		}
		if v := pi.VPF(o); v != nil {
			for _, e := range v.Entries() {
				if !clean(e.Value) {
					return false
				}
			}
		}
	}
	return true
}

// FuzzDecodeJSON asserts the JSON decoder never panics and accepted inputs
// round-trip stably.
func FuzzDecodeJSON(f *testing.F) {
	var seed bytes.Buffer
	if err := EncodeJSON(&seed, fixtures.Figure2VariedLeaves()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{"format":"pxml-json/1","root":"r","objects":[]}`)
	f.Add(`{"format":"pxml-json/1","root":"r","objects":[{"id":"r","children":[{"label":"l","ids":["x"]}],"opf":[{"set":["x"],"p":1}]}]}`)
	f.Add(`not json`)
	f.Fuzz(func(t *testing.T, in string) {
		pi, err := DecodeJSON(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodeJSON(&buf, pi); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := DecodeJSON(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !core.Equal(pi, again, 1e-9) {
			t.Fatal("round trip unstable")
		}
	})
}

// Package codec serializes probabilistic instances. Two formats are
// provided: a self-describing JSON encoding for interchange and tooling,
// and a compact line-oriented text encoding whose write path is cheap —
// the paper's Figure 7 "total query time" includes writing the resulting
// instance to disk, and the selection experiment is dominated by that leg,
// so the codec is part of the reproduced pipeline.
package codec

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"pxml/internal/core"
	"pxml/internal/model"
	"pxml/internal/prob"
	"pxml/internal/sets"
)

// FormatJSON identifies the JSON encoding.
const FormatJSON = "pxml-json/1"

// jsonDoc is the top-level JSON document.
type jsonDoc struct {
	Format  string       `json:"format"`
	Root    string       `json:"root"`
	Types   []jsonType   `json:"types,omitempty"`
	Objects []jsonObject `json:"objects"`
}

type jsonType struct {
	Name   string   `json:"name"`
	Domain []string `json:"domain"`
}

type jsonObject struct {
	ID       string      `json:"id"`
	Children []jsonLabel `json:"children,omitempty"`
	OPF      []jsonOPF   `json:"opf,omitempty"`
	Type     string      `json:"type,omitempty"`
	Value    *string     `json:"value,omitempty"`
	VPF      []jsonVPF   `json:"vpf,omitempty"`
}

type jsonLabel struct {
	Label string    `json:"label"`
	IDs   []string  `json:"ids"`
	Card  *jsonCard `json:"card,omitempty"`
}

type jsonCard struct {
	Min int `json:"min"`
	Max int `json:"max"`
}

type jsonOPF struct {
	Set []string `json:"set"`
	P   float64  `json:"p"`
}

type jsonVPF struct {
	Value string  `json:"value"`
	P     float64 `json:"p"`
}

// EncodeJSON writes the instance as indented JSON.
func EncodeJSON(w io.Writer, pi *core.ProbInstance) error {
	doc := jsonDoc{Format: FormatJSON, Root: pi.Root()}
	var typeNames []string
	for name := range pi.Types() {
		typeNames = append(typeNames, name)
	}
	sort.Strings(typeNames)
	for _, name := range typeNames {
		t := pi.Types()[name]
		doc.Types = append(doc.Types, jsonType{Name: t.Name, Domain: t.Domain})
	}
	for _, o := range pi.Objects() {
		jo := jsonObject{ID: o}
		for _, l := range pi.Labels(o) {
			jl := jsonLabel{Label: l, IDs: pi.LCh(o, l)}
			iv := pi.Card(o, l)
			jl.Card = &jsonCard{Min: iv.Min, Max: iv.Max}
			jo.Children = append(jo.Children, jl)
		}
		if w := pi.OPF(o); w != nil {
			for _, e := range w.Entries() {
				jo.OPF = append(jo.OPF, jsonOPF{Set: e.Set, P: e.Prob})
			}
		}
		if t, ok := pi.TypeOf(o); ok {
			jo.Type = t.Name
			if v, okV := pi.DefaultValue(o); okV {
				val := v
				jo.Value = &val
			}
		}
		if v := pi.VPF(o); v != nil {
			for _, e := range v.Entries() {
				jo.VPF = append(jo.VPF, jsonVPF{Value: e.Value, P: e.Prob})
			}
		}
		doc.Objects = append(doc.Objects, jo)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// DecodeJSON reads an instance from its JSON encoding. The result is
// validated structurally (weak-instance invariants) but not
// probabilistically; call Validate or ValidateLite on the result as needed.
func DecodeJSON(r io.Reader) (*core.ProbInstance, error) {
	var doc jsonDoc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("codec: decoding JSON: %w", err)
	}
	if doc.Format != FormatJSON {
		return nil, fmt.Errorf("codec: unexpected format %q", doc.Format)
	}
	if doc.Root == "" {
		return nil, fmt.Errorf("codec: missing root")
	}
	pi := core.NewProbInstance(doc.Root)
	for _, t := range doc.Types {
		if err := pi.RegisterType(model.NewType(t.Name, t.Domain...)); err != nil {
			return nil, fmt.Errorf("codec: type %s: %w", t.Name, err)
		}
	}
	for _, jo := range doc.Objects {
		pi.AddObject(jo.ID)
		for _, jl := range jo.Children {
			pi.SetLCh(jo.ID, jl.Label, jl.IDs...)
			if jl.Card != nil {
				pi.SetCard(jo.ID, jl.Label, jl.Card.Min, jl.Card.Max)
			}
		}
		if len(jo.OPF) > 0 {
			w := prob.NewOPF()
			for _, e := range jo.OPF {
				w.Add(sets.NewSet(e.Set...), e.P)
			}
			pi.SetOPF(jo.ID, w)
		}
		if jo.Type != "" {
			if err := pi.SetLeafType(jo.ID, jo.Type); err != nil {
				return nil, fmt.Errorf("codec: object %s: %w", jo.ID, err)
			}
			if jo.Value != nil {
				if err := pi.SetDefaultValue(jo.ID, *jo.Value); err != nil {
					return nil, fmt.Errorf("codec: object %s: %w", jo.ID, err)
				}
			}
		}
		if len(jo.VPF) > 0 {
			v := prob.NewVPF()
			for _, e := range jo.VPF {
				v.Put(e.Value, e.P)
			}
			pi.SetVPF(jo.ID, v)
		}
	}
	if err := pi.WeakInstance.Validate(); err != nil {
		return nil, fmt.Errorf("codec: decoded instance invalid: %w", err)
	}
	return pi, nil
}

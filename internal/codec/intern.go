package codec

import "sync"

// Interner deduplicates strings across decodes. A store-wide interner
// makes warm lazy decode allocate near zero: the labels, type names,
// and identifiers that repeat across instances are copied to the heap
// once and every later occurrence resolves to the same string.
//
// The interner copies each new string out of the caller's buffer (it
// never retains the input slice), so it is safe to feed bytes from a
// memory mapping that may later be unmapped. Entries are never evicted;
// callers should scope an Interner to a set of records with a shared
// vocabulary (one store), not use a global one.
type Interner struct {
	mu sync.Mutex
	m  map[string]string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{m: make(map[string]string, 256)}
}

// Intern returns the canonical heap string equal to b, allocating it on
// first sight. Lookups on the hit path do not allocate (the compiler
// elides the []byte→string conversion for map indexing).
func (in *Interner) Intern(b []byte) string {
	in.mu.Lock()
	s, ok := in.m[string(b)]
	if !ok {
		s = string(b)
		in.m[s] = s
	}
	in.mu.Unlock()
	return s
}

// InternString is Intern for an existing string.
func (in *Interner) InternString(v string) string {
	in.mu.Lock()
	s, ok := in.m[v]
	if !ok {
		// Strings arriving here may be substrings of a larger buffer;
		// clone so the interner pins only its own bytes.
		s = string(append([]byte(nil), v...))
		in.m[s] = s
	}
	in.mu.Unlock()
	return s
}

// Len reports the number of distinct strings interned.
func (in *Interner) Len() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.m)
}

package codec

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"pxml/internal/core"
	"pxml/internal/model"
	"pxml/internal/prob"
	"pxml/internal/sets"
)

// FormatText identifies the line-oriented text encoding. Grammar (one
// record per line, space separated; identifiers, labels and values must be
// whitespace-free):
//
//	pxml 1
//	root <id>
//	type <name> <value>...
//	lch <id> <label> <min> <max> <child>...
//	opf <id> <p> <child>...
//	leaf <id> <typename> [<default-value>]
//	vpf <id> <p> <value>
//	obj <id>
//
// "obj" records objects that appear nowhere else (isolated ids).
const FormatText = "pxml/1"

// EncodeText writes the instance in the compact text encoding. It is the
// serialization used by the benchmark harness's write-to-disk leg.
func EncodeText(w io.Writer, pi *core.ProbInstance) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintln(bw, FormatText); err != nil {
		return err
	}
	if err := checkToken(pi.Root()); err != nil {
		return err
	}
	fmt.Fprintf(bw, "root %s\n", pi.Root())
	var typeNames []string
	for name := range pi.Types() {
		typeNames = append(typeNames, name)
	}
	sort.Strings(typeNames)
	for _, name := range typeNames {
		t := pi.Types()[name]
		if err := checkTokens(append([]string{t.Name}, t.Domain...)); err != nil {
			return err
		}
		bw.WriteString("type ")
		bw.WriteString(t.Name)
		for _, v := range t.Domain {
			bw.WriteByte(' ')
			bw.WriteString(v)
		}
		bw.WriteByte('\n')
	}
	mentioned := map[model.ObjectID]bool{pi.Root(): true}
	for _, o := range pi.Objects() {
		if err := checkToken(o); err != nil {
			return err
		}
		for _, l := range pi.Labels(o) {
			if err := checkToken(l); err != nil {
				return err
			}
			iv := pi.Card(o, l)
			bw.WriteString("lch ")
			bw.WriteString(o)
			bw.WriteByte(' ')
			bw.WriteString(l)
			bw.WriteByte(' ')
			bw.WriteString(strconv.Itoa(iv.Min))
			bw.WriteByte(' ')
			bw.WriteString(strconv.Itoa(iv.Max))
			for _, c := range pi.LCh(o, l) {
				mentioned[c] = true
				bw.WriteByte(' ')
				bw.WriteString(c)
			}
			bw.WriteByte('\n')
			mentioned[o] = true
		}
		if w := pi.OPF(o); w != nil {
			for _, e := range w.Entries() {
				bw.WriteString("opf ")
				bw.WriteString(o)
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatFloat(e.Prob, 'g', -1, 64))
				for _, c := range e.Set {
					bw.WriteByte(' ')
					bw.WriteString(c)
				}
				bw.WriteByte('\n')
			}
		}
		if t, ok := pi.TypeOf(o); ok {
			bw.WriteString("leaf ")
			bw.WriteString(o)
			bw.WriteByte(' ')
			bw.WriteString(t.Name)
			if v, okV := pi.DefaultValue(o); okV {
				bw.WriteByte(' ')
				bw.WriteString(v)
			}
			bw.WriteByte('\n')
			mentioned[o] = true
		}
		if v := pi.VPF(o); v != nil {
			for _, e := range v.Entries() {
				if err := checkToken(e.Value); err != nil {
					return err
				}
				bw.WriteString("vpf ")
				bw.WriteString(o)
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatFloat(e.Prob, 'g', -1, 64))
				bw.WriteByte(' ')
				bw.WriteString(e.Value)
				bw.WriteByte('\n')
			}
		}
	}
	for _, o := range pi.Objects() {
		if !mentioned[o] {
			bw.WriteString("obj ")
			bw.WriteString(o)
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// DecodeText reads an instance from the text encoding.
func DecodeText(r io.Reader) (*core.ProbInstance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	line := 0
	if !sc.Scan() {
		return nil, fmt.Errorf("codec: empty input")
	}
	line++
	if got := strings.TrimSpace(sc.Text()); got != FormatText {
		return nil, fmt.Errorf("codec: line 1: unexpected header %q", got)
	}
	var pi *core.ProbInstance
	opfs := map[model.ObjectID]*prob.OPF{}
	vpfs := map[model.ObjectID]*prob.VPF{}
	type pendingLeaf struct{ typ, val string }
	leaves := map[model.ObjectID]pendingLeaf{}
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		bad := func(msg string) error {
			return fmt.Errorf("codec: line %d: %s: %q", line, msg, sc.Text())
		}
		switch fields[0] {
		case "root":
			if len(fields) != 2 {
				return nil, bad("root needs one id")
			}
			if pi != nil {
				return nil, bad("duplicate root")
			}
			pi = core.NewProbInstance(fields[1])
		case "type":
			if pi == nil {
				return nil, bad("type before root")
			}
			if len(fields) < 3 {
				return nil, bad("type needs a name and a domain")
			}
			if err := pi.RegisterType(model.NewType(fields[1], fields[2:]...)); err != nil {
				return nil, fmt.Errorf("codec: line %d: %w", line, err)
			}
		case "lch":
			if pi == nil {
				return nil, bad("lch before root")
			}
			if len(fields) < 5 {
				return nil, bad("lch needs id label min max children")
			}
			min, err1 := strconv.Atoi(fields[3])
			max, err2 := strconv.Atoi(fields[4])
			if err1 != nil || err2 != nil {
				return nil, bad("bad cardinality")
			}
			pi.SetLCh(fields[1], fields[2], fields[5:]...)
			pi.SetCard(fields[1], fields[2], min, max)
		case "opf":
			if pi == nil {
				return nil, bad("opf before root")
			}
			if len(fields) < 3 {
				return nil, bad("opf needs id and probability")
			}
			p, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, bad("bad probability")
			}
			w := opfs[fields[1]]
			if w == nil {
				w = prob.NewOPF()
				opfs[fields[1]] = w
			}
			w.Add(sets.NewSet(fields[3:]...), p)
		case "leaf":
			if pi == nil {
				return nil, bad("leaf before root")
			}
			if len(fields) != 3 && len(fields) != 4 {
				return nil, bad("leaf needs id type [value]")
			}
			pl := pendingLeaf{typ: fields[2]}
			if len(fields) == 4 {
				pl.val = fields[3]
			}
			leaves[fields[1]] = pl
		case "vpf":
			if pi == nil {
				return nil, bad("vpf before root")
			}
			if len(fields) != 4 {
				return nil, bad("vpf needs id probability value")
			}
			p, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, bad("bad probability")
			}
			v := vpfs[fields[1]]
			if v == nil {
				v = prob.NewVPF()
				vpfs[fields[1]] = v
			}
			v.Put(fields[3], p)
		case "obj":
			if pi == nil {
				return nil, bad("obj before root")
			}
			if len(fields) != 2 {
				return nil, bad("obj needs one id")
			}
			pi.AddObject(fields[1])
		default:
			return nil, bad("unknown record")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("codec: %w", err)
	}
	if pi == nil {
		return nil, fmt.Errorf("codec: missing root record")
	}
	for o, pl := range leaves {
		if err := pi.SetLeafType(o, pl.typ); err != nil {
			return nil, fmt.Errorf("codec: leaf %s: %w", o, err)
		}
		if pl.val != "" {
			if err := pi.SetDefaultValue(o, pl.val); err != nil {
				return nil, fmt.Errorf("codec: leaf %s: %w", o, err)
			}
		}
	}
	for o, w := range opfs {
		pi.SetOPF(o, w)
	}
	for o, v := range vpfs {
		pi.SetVPF(o, v)
	}
	if err := pi.WeakInstance.Validate(); err != nil {
		return nil, fmt.Errorf("codec: decoded instance invalid: %w", err)
	}
	return pi, nil
}

func checkToken(s string) error {
	if s == "" {
		return fmt.Errorf("codec: empty token")
	}
	if strings.IndexFunc(s, func(r rune) bool { return r == ' ' || r == '\t' || r == '\n' || r == '\r' }) >= 0 {
		return fmt.Errorf("codec: token %q contains whitespace", s)
	}
	return nil
}

func checkTokens(ss []string) error {
	for _, s := range ss {
		if err := checkToken(s); err != nil {
			return err
		}
	}
	return nil
}

package codec

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
	"sync"

	"pxml/internal/core"
	"pxml/internal/model"
	"pxml/internal/prob"
	"pxml/internal/sets"
)

// FormatBinary identifies the compact binary encoding. The wire layout is
// a single length+CRC32-framed record:
//
//	magic   "PXB1" (4 bytes)
//	length  uvarint — size of the body that follows
//	body    string table + instance structure (see below)
//	crc     CRC-32 (IEEE) of the body, little endian
//
// The body interns every identifier, label, type name and value in a
// sorted string table and refers to them by uvarint index, so repeated
// identifiers (the dominant content of the text encoding) cost one or two
// bytes each:
//
//	uvarint #strings, then per string: uvarint length + bytes
//	uvarint root string index
//	uvarint #types, then per type: name index, uvarint #values, value indexes
//	uvarint #objects, then per object:
//	  id index
//	  uvarint type reference (0 = untyped, else 1 + position in type list)
//	  uvarint default-value reference (0 = none, else 1 + string index)
//	  uvarint #labels, then per label:
//	    label index, varint card min, varint card max,
//	    uvarint #children, child indexes
//	  uvarint #OPF entries, then per entry:
//	    8-byte little-endian float64, uvarint set size, member indexes
//	  uvarint #VPF entries, then per entry:
//	    8-byte little-endian float64, value index
//
// Encoding is deterministic (table sorted, objects/labels/entries in
// canonical order) and round-trips with the text and JSON codecs: for any
// instance, text→binary→text reproduces the same bytes.
const FormatBinary = "pxml-bin/1"

var binaryMagic = [4]byte{'P', 'X', 'B', '1'}

// maxBinaryBody bounds the body length DecodeBinary accepts, guarding
// against absurd length prefixes on corrupt input.
const maxBinaryBody = 1 << 30

// encodeBufPool recycles record-sized scratch buffers across encodes, so
// steady-state serialization (the WAL framing path re-encodes on every
// Put) allocates nothing per record beyond the caller's destination.
var encodeBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

// maxPooledEncodeBuf caps what goes back in the pool: one enormous
// instance must not pin its scratch buffer forever.
const maxPooledEncodeBuf = 4 << 20

// recycleEncodeBuf returns a scratch buffer to the pool unless it grew
// past the retention cap.
func recycleEncodeBuf(bp *[]byte, b []byte) {
	if cap(b) <= maxPooledEncodeBuf {
		*bp = b[:0]
		encodeBufPool.Put(bp)
	}
}

// AppendBinary appends the binary encoding of pi to buf and returns the
// extended slice. It is the allocation-friendly core of EncodeBinary,
// usable directly by storage layers that frame records themselves.
func AppendBinary(buf []byte, pi *core.ProbInstance) []byte {
	buf = append(buf, binaryMagic[:]...)
	// The body is built separately (in pooled scratch) so its uvarint
	// length can precede it.
	bp := encodeBufPool.Get().(*[]byte)
	body := appendBinaryBody((*bp)[:0], pi)
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	buf = append(buf, body...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(body))
	recycleEncodeBuf(bp, body)
	return buf
}

// EncodeBinary writes the instance in the framed binary encoding.
func EncodeBinary(w io.Writer, pi *core.ProbInstance) error {
	bp := encodeBufPool.Get().(*[]byte)
	rec := AppendBinary((*bp)[:0], pi)
	_, err := w.Write(rec)
	recycleEncodeBuf(bp, rec)
	return err
}

// appendBinaryBody serializes the instance structure (everything between
// the length prefix and the CRC).
func appendBinaryBody(buf []byte, pi *core.ProbInstance) []byte {
	// Intern every string the instance mentions. Sizing by object count
	// (ids dominate the table; labels and values add a fraction) avoids
	// rehash churn on large instances.
	est := pi.NumObjects()*2 + 16
	seen := make(map[string]struct{}, est)
	strs := make([]string, 0, est)
	intern := func(s string) {
		if _, ok := seen[s]; !ok {
			seen[s] = struct{}{}
			strs = append(strs, s)
		}
	}
	objs := pi.Objects()
	intern(pi.Root())
	for _, o := range objs {
		intern(o)
		for _, l := range pi.Labels(o) {
			intern(l)
			for _, c := range pi.LCh(o, l) {
				intern(c)
			}
		}
		if v, ok := pi.DefaultValue(o); ok {
			intern(v)
		}
		if w := pi.OPF(o); w != nil {
			for _, e := range w.Entries() {
				for _, m := range e.Set {
					intern(m)
				}
			}
		}
		if v := pi.VPF(o); v != nil {
			for _, e := range v.Entries() {
				intern(e.Value)
			}
		}
	}
	var typeNames []string
	for name, t := range pi.Types() {
		typeNames = append(typeNames, name)
		intern(t.Name)
		for _, v := range t.Domain {
			intern(v)
		}
	}
	sort.Strings(typeNames)
	typePos := make(map[model.TypeName]uint64, len(typeNames))
	for i, name := range typeNames {
		typePos[name] = uint64(i)
	}
	sort.Strings(strs)
	idx := make(map[string]uint64, len(strs))
	for i, s := range strs {
		idx[s] = uint64(i)
	}

	buf = binary.AppendUvarint(buf, uint64(len(strs)))
	for _, s := range strs {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	buf = binary.AppendUvarint(buf, idx[pi.Root()])

	buf = binary.AppendUvarint(buf, uint64(len(typeNames)))
	for _, name := range typeNames {
		t := pi.Types()[name]
		buf = binary.AppendUvarint(buf, idx[t.Name])
		buf = binary.AppendUvarint(buf, uint64(len(t.Domain)))
		for _, v := range t.Domain {
			buf = binary.AppendUvarint(buf, idx[v])
		}
	}

	buf = binary.AppendUvarint(buf, uint64(len(objs)))
	for _, o := range objs {
		buf = binary.AppendUvarint(buf, idx[o])
		if t, ok := pi.TypeOf(o); ok {
			buf = binary.AppendUvarint(buf, typePos[t.Name]+1)
		} else {
			buf = binary.AppendUvarint(buf, 0)
		}
		if v, ok := pi.DefaultValue(o); ok {
			buf = binary.AppendUvarint(buf, idx[v]+1)
		} else {
			buf = binary.AppendUvarint(buf, 0)
		}
		labels := pi.Labels(o)
		buf = binary.AppendUvarint(buf, uint64(len(labels)))
		for _, l := range labels {
			buf = binary.AppendUvarint(buf, idx[l])
			iv := pi.Card(o, l)
			buf = binary.AppendVarint(buf, int64(iv.Min))
			buf = binary.AppendVarint(buf, int64(iv.Max))
			cs := pi.LCh(o, l)
			buf = binary.AppendUvarint(buf, uint64(cs.Len()))
			for _, c := range cs {
				buf = binary.AppendUvarint(buf, idx[c])
			}
		}
		if w := pi.OPF(o); w != nil {
			es := w.Entries()
			buf = binary.AppendUvarint(buf, uint64(len(es)))
			for _, e := range es {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Prob))
				buf = binary.AppendUvarint(buf, uint64(e.Set.Len()))
				for _, m := range e.Set {
					buf = binary.AppendUvarint(buf, idx[m])
				}
			}
		} else {
			buf = binary.AppendUvarint(buf, 0)
		}
		if v := pi.VPF(o); v != nil {
			es := v.Entries()
			buf = binary.AppendUvarint(buf, uint64(len(es)))
			for _, e := range es {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Prob))
				buf = binary.AppendUvarint(buf, idx[e.Value])
			}
		} else {
			buf = binary.AppendUvarint(buf, 0)
		}
	}
	return buf
}

// DecodeBinary reads an instance from the framed binary encoding. It
// verifies the length prefix and CRC before interpreting the body, so a
// bit flip anywhere in the record is detected rather than decoded.
func DecodeBinary(r io.Reader) (*core.ProbInstance, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxBinaryBody+64))
	if err != nil {
		return nil, fmt.Errorf("codec: %w", err)
	}
	return DecodeBinaryBytes(data)
}

// DecodeBinaryBytes is DecodeBinary over an in-memory record. The record
// must contain exactly one framed instance with no trailing bytes.
func DecodeBinaryBytes(data []byte) (*core.ProbInstance, error) {
	return DecodeBinaryBytesInterned(data, nil)
}

// DecodeBinaryBytesInterned is DecodeBinaryBytes with an optional string
// interner. With in != nil every decoded string is routed through the
// interner, so labels and identifiers repeated across records (the
// dominant content of a store's snapshot) are allocated once and shared;
// nothing in the returned instance references data, making this the
// decode mode for memory-mapped inputs whose lifetime is shorter than
// the instance's.
func DecodeBinaryBytesInterned(data []byte, in *Interner) (*core.ProbInstance, error) {
	body, err := binaryBody(data)
	if err != nil {
		return nil, err
	}
	return decodeBinaryBody(body, in)
}

// CheckBinary verifies the record frame — magic, length prefix, CRC —
// without decoding the body. It is the cheap, allocation-free integrity
// gate the store's lazy load runs at open time, deferring the expensive
// structural decode to first touch.
func CheckBinary(data []byte) error {
	_, err := binaryBody(data)
	return err
}

// binaryBody validates the record frame and returns the body bytes.
func binaryBody(data []byte) ([]byte, error) {
	if len(data) < len(binaryMagic) || string(data[:4]) != string(binaryMagic[:]) {
		return nil, fmt.Errorf("codec: not a %s record (bad magic)", FormatBinary)
	}
	n, k := binary.Uvarint(data[4:])
	if k <= 0 || n > maxBinaryBody {
		return nil, fmt.Errorf("codec: bad binary length prefix")
	}
	off := 4 + k
	if uint64(len(data)-off) < n+4 {
		return nil, fmt.Errorf("codec: truncated binary record (want %d body bytes, have %d)", n, len(data)-off)
	}
	if uint64(len(data)-off) > n+4 {
		return nil, fmt.Errorf("codec: %d trailing bytes after binary record", uint64(len(data)-off)-n-4)
	}
	body := data[off : off+int(n)]
	want := binary.LittleEndian.Uint32(data[off+int(n):])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("codec: binary record CRC mismatch (got %08x, want %08x)", got, want)
	}
	return body, nil
}

// bcursor is a bounds-checked reader over the record body.
type bcursor struct {
	b   []byte
	off int
}

func (c *bcursor) remaining() int { return len(c.b) - c.off }

func (c *bcursor) uvarint() (uint64, error) {
	// Fast path: single-byte varints dominate real records (string-table
	// indexes, small counts), and skipping the generic decoder keeps this
	// inlinable at every call site.
	if c.off < len(c.b) {
		if x := c.b[c.off]; x < 0x80 {
			c.off++
			return uint64(x), nil
		}
	}
	return c.uvarintSlow()
}

func (c *bcursor) uvarintSlow() (uint64, error) {
	v, k := binary.Uvarint(c.b[c.off:])
	if k <= 0 {
		return 0, fmt.Errorf("codec: truncated varint at byte %d", c.off)
	}
	c.off += k
	return v, nil
}

// count reads a uvarint that counts upcoming elements of at least minSize
// bytes each, rejecting counts the remaining input cannot possibly hold
// (so corrupt headers cannot force huge allocations).
func (c *bcursor) count(minSize int) (int, error) {
	v, err := c.uvarint()
	if err != nil {
		return 0, err
	}
	if minSize < 1 {
		minSize = 1
	}
	if v > uint64(c.remaining()/minSize) {
		return 0, fmt.Errorf("codec: count %d exceeds remaining input at byte %d", v, c.off)
	}
	return int(v), nil
}

func (c *bcursor) varint() (int64, error) {
	v, k := binary.Varint(c.b[c.off:])
	if k <= 0 {
		return 0, fmt.Errorf("codec: truncated varint at byte %d", c.off)
	}
	c.off += k
	return v, nil
}

func (c *bcursor) f64() (float64, error) {
	if c.remaining() < 8 {
		return 0, fmt.Errorf("codec: truncated float at byte %d", c.off)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(c.b[c.off:]))
	c.off += 8
	return v, nil
}

func (c *bcursor) str(table []string) (string, error) {
	i, err := c.uvarint()
	if err != nil {
		return "", err
	}
	if i >= uint64(len(table)) {
		return "", fmt.Errorf("codec: string index %d out of range (table size %d)", i, len(table))
	}
	return table[i], nil
}

// strArena hands out []string sub-slices from shared slabs, collapsing
// the thousands of tiny member-list allocations a large record needs into
// a few big ones. Callers adopt the slices (sets are immutable by
// convention), so slabs are never reused.
type strArena struct {
	slab []string
}

func (a *strArena) take(n int) []string {
	if n > cap(a.slab)-len(a.slab) {
		size := 1 << 12
		if n > size {
			size = n
		}
		a.slab = make([]string, 0, size)
	}
	out := a.slab[len(a.slab) : len(a.slab)+n : len(a.slab)+n]
	a.slab = a.slab[:len(a.slab)+n]
	return out
}

func decodeBinaryBody(body []byte, in *Interner) (*core.ProbInstance, error) {
	c := &bcursor{b: body}
	nStrs, err := c.count(1)
	if err != nil {
		return nil, err
	}
	table := make([]string, nStrs)
	if in != nil {
		// Interned mode: each table entry is resolved through the
		// interner, so entries repeated across records share one heap
		// string and nothing retains body.
		for i := range table {
			l, err := c.uvarint()
			if err != nil {
				return nil, err
			}
			if l > uint64(c.remaining()) {
				return nil, fmt.Errorf("codec: string length %d exceeds remaining input", l)
			}
			table[i] = in.Intern(body[c.off : c.off+int(l)])
			c.off += int(l)
		}
	} else {
		// One string conversion for the whole table region: entries are
		// substrings of it, so the table costs one allocation instead of
		// one per string (the table is the bulk of a large record).
		bodyStr := string(body)
		for i := range table {
			l, err := c.uvarint()
			if err != nil {
				return nil, err
			}
			if l > uint64(c.remaining()) {
				return nil, fmt.Errorf("codec: string length %d exceeds remaining input", l)
			}
			table[i] = bodyStr[c.off : c.off+int(l)]
			c.off += int(l)
		}
	}
	root, err := c.str(table)
	if err != nil {
		return nil, err
	}

	nTypes, err := c.count(2)
	if err != nil {
		return nil, err
	}
	// Peek past nothing: the loader wants the object count, but types come
	// first in the stream, so register them into the loader as they arrive.
	ld := core.NewLoader(root, len(table))
	typeNames := make([]model.TypeName, nTypes)
	for i := 0; i < nTypes; i++ {
		name, err := c.str(table)
		if err != nil {
			return nil, err
		}
		nDom, err := c.count(1)
		if err != nil {
			return nil, err
		}
		dom := make([]model.Value, nDom)
		for j := range dom {
			if dom[j], err = c.str(table); err != nil {
				return nil, err
			}
		}
		if err := ld.RegisterType(model.NewType(name, dom...)); err != nil {
			return nil, fmt.Errorf("codec: %w", err)
		}
		typeNames[i] = name
	}

	nObjs, err := c.count(4)
	if err != nil {
		return nil, err
	}
	var arena strArena
	for i := 0; i < nObjs; i++ {
		o, err := c.str(table)
		if err != nil {
			return nil, err
		}
		ld.AddObject(o)
		typeRef, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		if typeRef > uint64(nTypes) {
			return nil, fmt.Errorf("codec: type reference %d out of range for object %s", typeRef, o)
		}
		valRef, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		if valRef > uint64(len(table)) {
			return nil, fmt.Errorf("codec: value reference %d out of range for object %s", valRef, o)
		}
		if typeRef > 0 {
			if err := ld.SetLeafType(o, typeNames[typeRef-1]); err != nil {
				return nil, fmt.Errorf("codec: %w", err)
			}
		}
		if valRef > 0 {
			if err := ld.SetDefaultValue(o, table[valRef-1]); err != nil {
				return nil, fmt.Errorf("codec: %w", err)
			}
		}
		nLabels, err := c.count(4)
		if err != nil {
			return nil, err
		}
		for j := 0; j < nLabels; j++ {
			l, err := c.str(table)
			if err != nil {
				return nil, err
			}
			min64, err := c.varint()
			if err != nil {
				return nil, err
			}
			max64, err := c.varint()
			if err != nil {
				return nil, err
			}
			nCh, err := c.count(1)
			if err != nil {
				return nil, err
			}
			if nCh == 0 {
				return nil, fmt.Errorf("codec: empty lch entry for (%s, %s)", o, l)
			}
			children := arena.take(nCh)
			for k := range children {
				if children[k], err = c.str(table); err != nil {
					return nil, err
				}
			}
			// The encoder emits members in canonical (sorted) order, so
			// FromSorted adopts the slice without a sort or copy.
			ld.SetEdges(o, l, sets.FromSorted(children), int(min64), int(max64))
		}
		nOPF, err := c.count(9)
		if err != nil {
			return nil, err
		}
		if nOPF > 0 {
			w := prob.NewOPFSized(nOPF)
			for j := 0; j < nOPF; j++ {
				p, err := c.f64()
				if err != nil {
					return nil, err
				}
				if math.IsNaN(p) || math.IsInf(p, 0) {
					return nil, fmt.Errorf("codec: non-finite OPF probability for object %s", o)
				}
				nSet, err := c.count(1)
				if err != nil {
					return nil, err
				}
				members := arena.take(nSet)
				for k := range members {
					if members[k], err = c.str(table); err != nil {
						return nil, err
					}
				}
				w.Put(sets.FromSorted(members), p)
			}
			ld.SetOPF(o, w)
		}
		nVPF, err := c.count(9)
		if err != nil {
			return nil, err
		}
		if nVPF > 0 {
			v := prob.NewVPFSized(nVPF)
			for j := 0; j < nVPF; j++ {
				p, err := c.f64()
				if err != nil {
					return nil, err
				}
				if math.IsNaN(p) || math.IsInf(p, 0) {
					return nil, fmt.Errorf("codec: non-finite VPF probability for object %s", o)
				}
				val, err := c.str(table)
				if err != nil {
					return nil, err
				}
				v.Put(val, p)
			}
			ld.SetVPF(o, v)
		}
	}
	if c.remaining() != 0 {
		return nil, fmt.Errorf("codec: %d unread bytes in binary body", c.remaining())
	}
	pi, err := ld.Instance()
	if err != nil {
		return nil, fmt.Errorf("codec: decoded instance invalid: %w", err)
	}
	return pi, nil
}

package codec

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pxml/internal/core"
	"pxml/internal/fixtures"
)

func roundTripJSON(t testing.TB, pi *core.ProbInstance) *core.ProbInstance {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeJSON(&buf, pi); err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}
	out, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatalf("DecodeJSON: %v", err)
	}
	return out
}

func roundTripText(t testing.TB, pi *core.ProbInstance) *core.ProbInstance {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeText(&buf, pi); err != nil {
		t.Fatalf("EncodeText: %v", err)
	}
	out, err := DecodeText(&buf)
	if err != nil {
		t.Fatalf("DecodeText: %v\n%s", err, buf.String())
	}
	return out
}

func TestJSONRoundTripFigure2(t *testing.T) {
	pi := fixtures.Figure2VariedLeaves()
	out := roundTripJSON(t, pi)
	if !core.Equal(pi, out, 1e-12) {
		t.Fatal("JSON round trip changed the instance")
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("decoded instance invalid: %v", err)
	}
}

func TestTextRoundTripFigure2(t *testing.T) {
	pi := fixtures.Figure2VariedLeaves()
	out := roundTripText(t, pi)
	if !core.Equal(pi, out, 1e-12) {
		t.Fatal("text round trip changed the instance")
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("decoded instance invalid: %v", err)
	}
}

func TestQuickRoundTripsRandom(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var pi *core.ProbInstance
		if seed%2 == 0 {
			pi = fixtures.RandomTree(r)
		} else {
			pi = fixtures.RandomDAG(r)
		}
		return core.Equal(pi, roundTripJSON(t, pi), 1e-12) &&
			core.Equal(pi, roundTripText(t, pi), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

func TestTextEncodingWithDefaults(t *testing.T) {
	pi := fixtures.Figure2()
	// Add a default value to exercise the optional leaf value field.
	if err := pi.SetDefaultValue("T1", "VQDB"); err != nil {
		t.Fatal(err)
	}
	out := roundTripText(t, pi)
	if v, ok := out.DefaultValue("T1"); !ok || v != "VQDB" {
		t.Errorf("default value lost: %q %v", v, ok)
	}
	out2 := roundTripJSON(t, pi)
	if v, ok := out2.DefaultValue("T1"); !ok || v != "VQDB" {
		t.Errorf("JSON default value lost: %q %v", v, ok)
	}
}

func TestIsolatedObjectSurvives(t *testing.T) {
	pi := core.NewProbInstance("r")
	pi.AddObject("island")
	out := roundTripText(t, pi)
	if !out.HasObject("island") {
		t.Error("isolated object lost in text round trip")
	}
}

func TestEncodeTextRejectsWhitespaceTokens(t *testing.T) {
	pi := core.NewProbInstance("bad root")
	var buf bytes.Buffer
	if err := EncodeText(&buf, pi); err == nil {
		t.Error("whitespace in root accepted")
	}
}

func TestDecodeTextErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"bad header", "nope\n"},
		{"no root", "pxml/1\nlch a b 0 1 c\n"},
		{"dup root", "pxml/1\nroot r\nroot q\n"},
		{"bad card", "pxml/1\nroot r\nlch r l x y z\n"},
		{"bad opf prob", "pxml/1\nroot r\nlch r l 0 1 c\nopf r xx c\n"},
		{"unknown record", "pxml/1\nroot r\nzzz\n"},
		{"bad vpf", "pxml/1\nroot r\nvpf r 0.5\n"},
		{"unknown leaf type", "pxml/1\nroot r\nleaf x nosuch\n"},
		{"missing root record", "pxml/1\n"},
		{"short lch", "pxml/1\nroot r\nlch r l 0\n"},
	}
	for _, c := range cases {
		if _, err := DecodeText(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestDecodeJSONErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"not json", "garbage"},
		{"wrong format", `{"format":"x","root":"r","objects":[]}`},
		{"missing root", `{"format":"pxml-json/1","objects":[]}`},
		{"bad type ref", `{"format":"pxml-json/1","root":"r","objects":[{"id":"x","type":"none"}]}`},
	}
	for _, c := range cases {
		if _, err := DecodeJSON(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestDecodeRejectsStructurallyInvalid(t *testing.T) {
	// A child under two labels of the same parent violates Definition 3.4.
	in := "pxml/1\nroot r\nlch r a 0 1 x\nlch r b 0 1 x\n"
	if _, err := DecodeText(strings.NewReader(in)); err == nil {
		t.Error("double-label child accepted")
	}
}

func TestTextDeterministic(t *testing.T) {
	pi := fixtures.Figure2()
	var a, b bytes.Buffer
	if err := EncodeText(&a, pi); err != nil {
		t.Fatal(err)
	}
	if err := EncodeText(&b, pi); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("text encoding not deterministic")
	}
	if !strings.HasPrefix(a.String(), FormatText+"\n") {
		t.Error("missing header")
	}
}

package codec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"pxml/internal/core"
	"pxml/internal/fixtures"
)

func roundTripBinary(t testing.TB, pi *core.ProbInstance) *core.ProbInstance {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, pi); err != nil {
		t.Fatalf("EncodeBinary: %v", err)
	}
	out, err := DecodeBinary(&buf)
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	return out
}

func TestBinaryRoundTripFigure2(t *testing.T) {
	pi := fixtures.Figure2VariedLeaves()
	out := roundTripBinary(t, pi)
	if !core.Equal(pi, out, 1e-12) {
		t.Fatal("binary round trip changed the instance")
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("decoded instance invalid: %v", err)
	}
}

func TestBinaryRoundTripDefaults(t *testing.T) {
	pi := fixtures.Figure2()
	if err := pi.SetDefaultValue("T1", "VQDB"); err != nil {
		t.Fatal(err)
	}
	out := roundTripBinary(t, pi)
	if v, ok := out.DefaultValue("T1"); !ok || v != "VQDB" {
		t.Errorf("default value lost: %q %v", v, ok)
	}
}

func TestBinaryIsolatedObjectSurvives(t *testing.T) {
	pi := core.NewProbInstance("r")
	pi.AddObject("island")
	out := roundTripBinary(t, pi)
	if !out.HasObject("island") {
		t.Error("isolated object lost in binary round trip")
	}
}

// TestBinaryParityWithText asserts the three codecs describe the same
// instance space: text→binary→text is byte-identical, and random
// instances survive a binary round trip exactly like a text one.
func TestBinaryParityWithText(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var pi *core.ProbInstance
		if seed%2 == 0 {
			pi = fixtures.RandomTree(r)
		} else {
			pi = fixtures.RandomDAG(r)
		}
		if !core.Equal(pi, roundTripBinary(t, pi), 1e-12) {
			return false
		}
		viaBinary := roundTripBinary(t, pi)
		var a, b bytes.Buffer
		if err := EncodeText(&a, pi); err != nil {
			t.Fatal(err)
		}
		if err := EncodeText(&b, viaBinary); err != nil {
			t.Fatal(err)
		}
		return a.String() == b.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(20260806))}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryDeterministic(t *testing.T) {
	pi := fixtures.Figure2VariedLeaves()
	var a, b bytes.Buffer
	if err := EncodeBinary(&a, pi); err != nil {
		t.Fatal(err)
	}
	if err := EncodeBinary(&b, pi); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("binary encoding not deterministic")
	}
	if !bytes.HasPrefix(a.Bytes(), binaryMagic[:]) {
		t.Error("missing magic")
	}
}

func TestBinaryDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, fixtures.Figure2()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	// Flip one bit in every byte position; every mutation must be rejected
	// (magic, length, body and CRC are all covered).
	for i := range good {
		bad := bytes.Clone(good)
		bad[i] ^= 0x40
		if pi, err := DecodeBinaryBytes(bad); err == nil {
			// A length-prefix mutation could in principle still frame a
			// valid record; it must then at least decode to the same
			// instance. Anything else is silent corruption.
			if !core.Equal(pi, fixtures.Figure2(), 1e-12) {
				t.Fatalf("bit flip at byte %d silently decoded to a different instance", i)
			}
		}
	}
	// Truncations at every prefix length are rejected too.
	for n := 0; n < len(good); n++ {
		if _, err := DecodeBinaryBytes(good[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Trailing garbage is rejected (the frame is exact).
	if _, err := DecodeBinaryBytes(append(bytes.Clone(good), 'x')); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestBinaryDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("nope")},
		{"magic only", []byte("PXB1")},
		{"huge length", append([]byte("PXB1"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)},
	}
	for _, c := range cases {
		if _, err := DecodeBinaryBytes(c.in); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestBinarySmallerThanText documents the compactness win the format
// exists for: interned strings and varints beat repeated ASCII tokens.
func TestBinarySmallerThanText(t *testing.T) {
	pi := fixtures.Figure2VariedLeaves()
	var text, bin bytes.Buffer
	if err := EncodeText(&text, pi); err != nil {
		t.Fatal(err)
	}
	if err := EncodeBinary(&bin, pi); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= text.Len() {
		t.Errorf("binary (%d bytes) not smaller than text (%d bytes)", bin.Len(), text.Len())
	}
}

package pxml_test

import (
	"bytes"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pxml"
)

func newDeterministicRand() *rand.Rand { return rand.New(rand.NewSource(42)) }

// TestIntegrationBinaries exercises every command-line tool and example
// end to end through the go toolchain: generate an instance, inspect it,
// query it, run a tiny benchmark sweep, drive the shell, and run each
// example program. Skipped under -short.
func TestIntegrationBinaries(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test runs binaries; skipped with -short")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not available")
	}
	dir := t.TempDir()
	inst := filepath.Join(dir, "inst.pxml")
	instJSON := filepath.Join(dir, "inst.json")

	run := func(wantFail bool, args ...string) string {
		t.Helper()
		cmd := exec.Command(goBin, append([]string{"run"}, args...)...)
		cmd.Dir = "."
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &out
		err := cmd.Run()
		if (err != nil) != wantFail {
			t.Fatalf("go run %v: err=%v\n%s", args, err, out.String())
		}
		return out.String()
	}

	// Generate (text and JSON).
	run(false, "./cmd/pxmlgen", "-depth", "3", "-branch", "2", "-labeling", "FR", "-seed", "5", "-o", inst)
	run(false, "./cmd/pxmlgen", "-depth", "2", "-branch", "2", "-format", "json", "-o", instJSON)

	// Inspect.
	info := run(false, "./cmd/pxmlinfo", inst)
	for _, want := range []string{"objects:     15", "tree:        true", "valid:       yes"} {
		if !strings.Contains(info, want) {
			t.Errorf("pxmlinfo missing %q:\n%s", want, info)
		}
	}
	run(false, "./cmd/pxmlinfo", "-format", "json", instJSON)

	// Query: worlds and marginals always work on a generated tree.
	worlds := run(false, "./cmd/pxmlquery", "-op", "worlds", "-top", "2", inst)
	if !strings.Contains(worlds, "p=") {
		t.Errorf("pxmlquery worlds output:\n%s", worlds)
	}
	marg := run(false, "./cmd/pxmlquery", "-op", "marginals", inst)
	if !strings.Contains(marg, "n0\t1.000000000") {
		t.Errorf("pxmlquery marginals output:\n%s", marg)
	}
	// An unknown op fails.
	run(true, "./cmd/pxmlquery", "-op", "nope", inst)

	// Bench: a tiny sweep.
	bench := run(false, "./cmd/pxmlbench", "-panel", "c", "-depths", "2,3", "-branches", "2",
		"-labelings", "SL", "-instances", "1", "-queries", "1")
	if !strings.Contains(bench, "selection") || !strings.Contains(bench, "linear fits") {
		t.Errorf("pxmlbench output:\n%s", bench)
	}

	// Shell: scripted session ending in SAVE.
	saved := filepath.Join(dir, "projected.pxml")
	script := "STATS\nWORLDS 1\nSAVE " + saved + "\nQUIT\n"
	cmd := exec.Command(goBin, "run", "./cmd/pxmlshell", inst)
	cmd.Stdin = strings.NewReader(script)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		t.Fatalf("pxmlshell: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "objects=15") {
		t.Errorf("shell output:\n%s", out.String())
	}
	if _, err := os.Stat(saved); err != nil {
		t.Errorf("shell SAVE produced no file: %v", err)
	}

	// Examples: each must run to completion.
	for _, ex := range []string{
		"./examples/quickstart",
		"./examples/bibliography",
		"./examples/surveillance",
		"./examples/sensornet",
		"./examples/citations",
	} {
		out := run(false, ex)
		if len(out) == 0 {
			t.Errorf("example %s produced no output", ex)
		}
	}
}

// TestLargeProjectionSmoke runs a full ancestor projection on an instance
// at the paper's upper scale (87 381 objects, 16-entry OPFs) to catch
// stack, allocation or complexity regressions. Skipped under -short.
func TestLargeProjectionSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large smoke test; skipped with -short")
	}
	w, err := pxml.GenerateWorkload(pxml.GenConfig{
		Depth: 8, Branch: 4, Labeling: pxml.SL, Seed: 77, LeafDomainSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.PI.NumObjects() != 87381 {
		t.Fatalf("objects = %d", w.PI.NumObjects())
	}
	r := newDeterministicRand()
	p, ok := w.RandomQuery(r)
	if !ok {
		t.Fatal("no query")
	}
	out, err := pxml.AncestorProject(w.PI, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.ValidateLite(); err != nil {
		t.Fatalf("large projection result invalid: %v", err)
	}
	// The result's induced semantics can't be enumerated at this scale;
	// check the cheap invariants instead: root OPF mass 1, every other
	// OPF normalized with zero mass on ∅.
	for _, o := range out.SortedOPFObjects() {
		opf := out.OPF(o)
		if m := opf.Mass(); m < 1-1e-6 || m > 1+1e-6 {
			t.Fatalf("OPF(%s) mass = %v", o, m)
		}
		if o != out.Root() && opf.Prob(nil) != 0 {
			t.Fatalf("non-root %s kept ∅ mass %v", o, opf.Prob(nil))
		}
	}
}

// TestIntegrationDaemon boots pxmld on a random port with a persistent
// data directory, drives its HTTP API, restarts it, and checks the catalog
// survived. Skipped under -short.
func TestIntegrationDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon integration; skipped with -short")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not available")
	}
	// Build once to a temp binary so restarts are fast.
	dir := t.TempDir()
	bin := filepath.Join(dir, "pxmld")
	if out, err := exec.Command(goBin, "build", "-o", bin, "./cmd/pxmld").CombinedOutput(); err != nil {
		t.Fatalf("building pxmld: %v\n%s", err, out)
	}
	dataDir := filepath.Join(dir, "data")
	addr := "127.0.0.1:39471"

	start := func() *exec.Cmd {
		cmd := exec.Command(bin, "-addr", addr, "-datadir", dataDir)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// Wait for the listener.
		for i := 0; i < 100; i++ {
			resp, err := http.Get("http://" + addr + "/v1/instances")
			if err == nil {
				resp.Body.Close()
				return cmd
			}
			time.Sleep(50 * time.Millisecond)
		}
		_ = cmd.Process.Kill()
		t.Fatal("pxmld did not start")
		return nil
	}
	stop := func(cmd *exec.Cmd) {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}

	cmd := start()
	// Upload an instance.
	var buf bytes.Buffer
	w, err := pxml.GenerateWorkload(pxml.GenConfig{Depth: 2, Branch: 2, Labeling: pxml.SL, Seed: 9, LeafDomainSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := pxml.EncodeText(&buf, w.PI); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("PUT", "http://"+addr+"/v1/instances/gen", bytes.NewReader(buf.Bytes()))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT status %d", resp.StatusCode)
	}
	// Query it — once natively on /v1, once through the legacy path,
	// which answers 308 and the default client follows transparently.
	qresp, err := http.Post("http://"+addr+"/v1/instances/gen/query", "text/plain", strings.NewReader("STATS"))
	if err != nil {
		t.Fatal(err)
	}
	qbody, _ := io.ReadAll(qresp.Body)
	qresp.Body.Close()
	if qresp.StatusCode != http.StatusOK || !strings.Contains(string(qbody), "objects=7") {
		t.Fatalf("query: %d %s", qresp.StatusCode, qbody)
	}
	lresp, err := http.Post("http://"+addr+"/instances/gen/query", "text/plain", strings.NewReader("STATS"))
	if err != nil {
		t.Fatal(err)
	}
	lbody0, _ := io.ReadAll(lresp.Body)
	lresp.Body.Close()
	if lresp.StatusCode != http.StatusOK || !strings.Contains(string(lbody0), "objects=7") {
		t.Fatalf("legacy query via redirect: %d %s", lresp.StatusCode, lbody0)
	}
	stop(cmd)

	// Restart: the instance must still be there.
	cmd = start()
	defer stop(cmd)
	lresp2, err := http.Get("http://" + addr + "/v1/instances")
	if err != nil {
		t.Fatal(err)
	}
	lbody, _ := io.ReadAll(lresp2.Body)
	lresp2.Body.Close()
	if !strings.Contains(string(lbody), `"name":"gen"`) {
		t.Fatalf("catalog lost after restart: %s", lbody)
	}
}

// Bibliography: the paper's running example, end to end. This program
// builds the exact probabilistic instance of Figure 2 (a DAG — books share
// potential authors, authors share a potential institution), reproduces
// the Example 4.1 computation, and then walks through the four situations
// of Section 2:
//
//  1. the authors of all books, keeping probabilities (ancestor
//     projection);
//  2. conditioning on a particular book surely existing (selection);
//  3. combining two probabilistic instances from different collection
//     systems (Cartesian product);
//  4. the probability that a particular author exists (a point query,
//     answered by Bayesian-network inference because the instance is a
//     DAG).
//
// Run with:
//
//	go run ./examples/bibliography
package main

import (
	"fmt"
	"log"

	"pxml"
)

// figure2 builds the probabilistic instance of Figure 2 through the public
// API. Cardinalities and OPF tables are copied from the paper; leaf VPFs
// are point masses on the Figure 1 values.
func figure2() (*pxml.ProbInstance, error) {
	return pxml.NewBuilder("R").
		Type("title-type", "VQDB", "Lore").
		Type("institution-type", "Stanford", "UMD").
		Children("R", "book", "B1", "B2", "B3").
		Card("R", "book", 2, 3).
		OPF("R",
			pxml.Entry(0.2, "B1", "B2"),
			pxml.Entry(0.2, "B1", "B3"),
			pxml.Entry(0.2, "B2", "B3"),
			pxml.Entry(0.4, "B1", "B2", "B3")).
		Children("B1", "title", "T1").
		Children("B1", "author", "A1", "A2").
		Card("B1", "author", 1, 2).
		Card("B1", "title", 0, 1).
		OPF("B1",
			pxml.Entry(0.3, "A1"), pxml.Entry(0.35, "A1", "T1"),
			pxml.Entry(0.1, "A2"), pxml.Entry(0.15, "A2", "T1"),
			pxml.Entry(0.05, "A1", "A2"), pxml.Entry(0.05, "A1", "A2", "T1")).
		Children("B2", "author", "A1", "A2", "A3").
		Card("B2", "author", 2, 2).
		OPF("B2",
			pxml.Entry(0.4, "A1", "A2"),
			pxml.Entry(0.4, "A1", "A3"),
			pxml.Entry(0.2, "A2", "A3")).
		Children("B3", "title", "T2").
		Children("B3", "author", "A3").
		Card("B3", "author", 1, 1).
		Card("B3", "title", 1, 1).
		OPF("B3", pxml.Entry(1, "A3", "T2")).
		Children("A1", "institution", "I1").
		Card("A1", "institution", 0, 1).
		OPF("A1", pxml.Entry(0.2), pxml.Entry(0.8, "I1")).
		Children("A2", "institution", "I1", "I2").
		Card("A2", "institution", 1, 1).
		OPF("A2", pxml.Entry(0.5, "I1"), pxml.Entry(0.5, "I2")).
		Children("A3", "institution", "I2").
		Card("A3", "institution", 1, 1).
		OPF("A3", pxml.Entry(1, "I2")).
		LeafValue("T1", "title-type", "VQDB").
		LeafValue("T2", "title-type", "Lore").
		LeafValue("I1", "institution-type", "Stanford").
		LeafValue("I2", "institution-type", "UMD").
		Build()
}

func main() {
	inst, err := figure2()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 2 instance: %d objects, tree=%v (books share authors: it is a DAG)\n\n",
		inst.NumObjects(), inst.IsTree())

	// Example 4.1: the probability of the particular world S1.
	worlds, err := pxml.Enumerate(inst, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compatible instances: %d, total probability %.9f (Theorem 1)\n", worlds.Len(), worlds.TotalMass())
	fmt.Printf("P(S1) = P(B1,B2|R)·P(A1,T1|B1)·P(A1,A2|B2)·P(I1|A1)·P(I1|A2)\n")
	fmt.Printf("      = 0.2 · 0.35 · 0.4 · 0.8 · 0.5 = %.6f\n\n", 0.2*0.35*0.4*0.8*0.5)

	// Situation 1: authors of all books, with probabilities preserved.
	// The instance is a DAG, so we use the global (possible-worlds)
	// semantics of Definition 5.3.
	authors := pxml.MustParsePath("R.book.author")
	proj, err := pxml.AncestorProjectGlobal(inst, authors, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1. Λ_{%s} has %d distinct result structures; the three most likely:\n", authors, proj.Len())
	for i, w := range proj.Worlds() {
		if i == 3 {
			break
		}
		fmt.Printf("   p=%.4f objects=%v\n", w.P, w.S.Objects())
	}
	fmt.Println()

	// Situation 2: now we know book B1 surely exists.
	cond := pxml.ObjectCondition{Path: pxml.MustParsePath("R.book"), Object: "B1"}
	_, pB1, err := pxml.SelectGlobal(inst, cond, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2. σ(R.book = B1): P(B1 exists) = %.3f; posterior renormalizes the %d worlds containing B1\n\n",
		pB1, worlds.Len())

	// Situation 3: combine with a second collection system's instance.
	ai, err := pxml.NewBuilder("R2").
		Type("title-type", "VQDB", "Lore").
		Children("R2", "book", "B9").
		IndependentOPF("R2", map[string]float64{"B9": 0.75}).
		Children("B9", "author", "A9").
		Card("B9", "author", 1, 1).
		OPF("B9", pxml.Entry(1, "A9")).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	prod, renames, err := pxml.CartesianProduct(inst, ai, "LIB")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3. I × I′ rooted at LIB: %d objects (renames applied: %d)\n", prod.NumObjects(), len(renames))
	pAny, err := pxml.PathProb(prod, pxml.MustParsePath("LIB.book.author"), "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   P(the combined library has some author) = %.6f\n\n", pAny)

	// Situation 4: the probability that a particular author exists.
	// Answered exactly on the DAG via the Bayesian-network mapping of
	// Section 6; cross-checked against brute-force enumeration.
	for _, a := range []string{"A1", "A2", "A3"} {
		pBN, err := pxml.ProbExists(inst, a)
		if err != nil {
			log.Fatal(err)
		}
		pOracle := worlds.ProbWhere(func(s *pxml.Instance) bool { return s.HasObject(a) })
		fmt.Printf("4. P(%s exists) = %.6f (BN inference)  %.6f (enumeration)\n", a, pBN, pOracle)
	}

	// Bonus: a point query through the shared-institution path.
	p, err := pxml.PathProb(inst, pxml.MustParsePath("R.book.author.institution"), "I1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nP(I1 ∈ R.book.author.institution) = %.6f\n", p)
}

// Surveillance: the object-recognition scenario sketched in Section 3.2 of
// the paper. An image-analysis pipeline reports scenes whose contents are
// uncertain: "if we have two vehicles, vehicle1 and vehicle2, and a bridge
// bridge1 in a scene S1, we may not be able to distinguish between a scene
// that has bridge1 and vehicle1 in it from a scene that has bridge1 and
// vehicle2" — so the OPF assigns those indistinguishable child sets equal
// probability. This example builds such an instance, checks the symmetry,
// and answers operational questions (is there a vehicle near the bridge?
// which scene should an analyst look at first?).
//
// Run with:
//
//	go run ./examples/surveillance
package main

import (
	"fmt"
	"log"

	"pxml"
)

func main() {
	// Two scenes from a drone pass. Scene 1 surely contains the bridge
	// and exactly one of the two (indistinguishable) vehicles with equal
	// probability, or both with smaller probability. Scene 2 is a
	// lower-confidence detection altogether.
	inst, err := pxml.NewBuilder("feed").
		Type("conf", "low", "high").
		Children("feed", "scene", "S1", "S2").
		OPF("feed",
			pxml.Entry(0.55, "S1"),
			pxml.Entry(0.05, "S2"),
			pxml.Entry(0.40, "S1", "S2")).
		Children("S1", "bridge", "bridge1").
		Children("S1", "vehicle", "vehicle1", "vehicle2").
		Card("S1", "bridge", 1, 1).
		Card("S1", "vehicle", 1, 2).
		// Indistinguishable vehicles: the symmetric OPF stores one
		// probability per count vector (bridges drawn, vehicles drawn) and
		// spreads it uniformly — the ℘(S1) symmetry of §3.2. The two
		// single-vehicle worlds each receive 0.70/2 = 0.35.
		SymmetricOPF("S1",
			[][]string{{"bridge1"}, {"vehicle1", "vehicle2"}},
			pxml.SymEntry(0.70, 1, 1),
			pxml.SymEntry(0.30, 1, 2)).
		Children("S2", "vehicle", "vehicle3").
		OPF("S2",
			pxml.Entry(0.7),
			pxml.Entry(0.3, "vehicle3")).
		Children("vehicle1", "track", "t1").
		IndependentOPF("vehicle1", map[string]float64{"t1": 0.6}).
		Children("vehicle2", "track", "t2").
		IndependentOPF("vehicle2", map[string]float64{"t2": 0.6}).
		Leaf("t1", "conf").
		VPF("t1", map[string]float64{"high": 0.8, "low": 0.2}).
		Leaf("t2", "conf").
		VPF("t2", map[string]float64{"high": 0.8, "low": 0.2}).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("surveillance feed: %d objects, tree=%v\n\n", inst.NumObjects(), inst.IsTree())

	// The symmetry of indistinguishable vehicles survives querying: the
	// two vehicles have identical existence probabilities.
	vehicles := pxml.MustParsePath("feed.scene.vehicle")
	p1, err := pxml.PointQuery(inst, vehicles, "vehicle1")
	if err != nil {
		log.Fatal(err)
	}
	p2, err := pxml.PointQuery(inst, vehicles, "vehicle2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(vehicle1 observed) = %.4f\nP(vehicle2 observed) = %.4f (symmetric, as required)\n\n", p1, p2)

	// Is there any vehicle at all in the feed?
	pv, err := pxml.ExistsQuery(inst, vehicles)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(some vehicle in some scene) = %.4f\n", pv)

	// Is there a high-confidence track?
	tracks := pxml.MustParsePath("feed.scene.vehicle.track")
	ph, err := pxml.ValueExistsQuery(inst, tracks, "high")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(some high-confidence track)  = %.4f\n\n", ph)

	// An analyst confirms scene S1 is real footage: condition on it.
	sel, pS1, err := pxml.Select(inst, pxml.ObjectCondition{
		Path: pxml.MustParsePath("feed.scene"), Object: "S1"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after confirming S1 (prior P = %.3f):\n", pS1)
	p1c, err := pxml.PointQuery(sel, vehicles, "vehicle1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  P(vehicle1 observed | S1) = %.4f\n\n", p1c)

	// Focus the feed on vehicles and their tracks: descendant projection
	// keeps the matched vehicles and everything below them.
	focus, err := pxml.DescendantProject(inst, vehicles)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("descendant projection on %s keeps %v\n", vehicles, focus.Objects())
	fmt.Printf("  ℘'(feed): %s\n", focus.OPF("feed"))

	// The joint at the new root preserves the mutual-exclusion structure:
	// compare P(vehicle1 ∧ vehicle2) against independence.
	w := focus.OPF("feed")
	joint := 0.0
	for _, e := range w.Entries() {
		if e.Set.Contains("vehicle1") && e.Set.Contains("vehicle2") {
			joint += e.Prob
		}
	}
	fmt.Printf("  P(vehicle1 ∧ vehicle2) = %.4f vs %.4f under independence\n",
		joint, w.ProbContains("vehicle1")*w.ProbContains("vehicle2"))
}

// Citations: the paper's opening motivation — a citation index built by
// crawling and parsing documents (Citeseer/DBLP), where "often, there will
// be uncertainty over the existence of a reference, the type of the
// reference, the existence of subfields ... the identity of the author
// (does Hung refer to Edward Hung or Sheung-lun Hung?)". This example
// models one crawled page two ways:
//
//  1. as a point probabilistic instance, queried through the pxql query
//     language (the shell's statement syntax), and
//  2. as an interval probabilistic instance (the companion-paper PIXML
//     variant referenced in the introduction) where the extractor only
//     commits to probability bounds, with queries returning intervals.
//
// Run with:
//
//	go run ./examples/citations
package main

import (
	"fmt"
	"log"
	"strings"

	"pxml"
)

func main() {
	// A crawled page with two candidate references. Reference 1 was parsed
	// confidently; reference 2 might be a false positive. The "Hung"
	// author of reference 1 is ambiguous between two known identities —
	// modeled as two potential author objects that cannot co-occur
	// (card [1,1] picks exactly one).
	page, err := pxml.NewBuilder("page").
		Type("year", "2002", "2003").
		Children("page", "ref", "ref1", "ref2").
		OPF("page",
			pxml.Entry(0.55, "ref1"),
			pxml.Entry(0.05, "ref2"),
			pxml.Entry(0.40, "ref1", "ref2")).
		Children("ref1", "author", "hungE", "hungSL").
		Children("ref1", "year", "y1").
		Card("ref1", "author", 1, 1).
		Card("ref1", "year", 0, 1).
		OPF("ref1",
			pxml.Entry(0.50, "hungE", "y1"),
			pxml.Entry(0.20, "hungSL", "y1"),
			pxml.Entry(0.22, "hungE"),
			pxml.Entry(0.08, "hungSL")).
		Children("ref2", "author", "getoorL").
		OPF("ref2",
			pxml.Entry(0.6, "getoorL"),
			pxml.Entry(0.4)).
		Leaf("y1", "year").
		VPF("y1", map[string]float64{"2002": 0.3, "2003": 0.7}).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crawled page: %d objects, tree=%v\n\n", page.NumObjects(), page.IsTree())

	// --- Point queries through the pxql query language. ---
	for _, stmt := range []string{
		"STATS",
		"PROB page.ref = ref1",
		"PROB page.ref.author = hungE",
		"PROB page.ref.author = hungSL",
		"PROB VAL(page.ref.year) = 2003",
		"SELECT page.ref = ref2",
	} {
		res, err := pxml.EvalPXQL(page, stmt)
		if err != nil {
			log.Fatalf("%s: %v", stmt, err)
		}
		fmt.Printf("pxql> %s\n      %s\n", stmt, res.Text)
		if res.Instance != nil {
			// Selections replace the working instance in a shell session;
			// here we just show the conditioned entity-resolution odds.
			pe, err := pxml.PointQuery(res.Instance, pxml.MustParsePath("page.ref.author"), "hungE")
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("      after conditioning: P(Edward Hung) = %.4f\n", pe)
		}
	}
	fmt.Println()

	// --- Interval probabilities: the extractor only bounds its belief. ---
	// Same weak instance; each OPF becomes a probability interval. The
	// extractor commits, e.g., to P(ref1 and ref2 both real) ∈ [0.3, 0.5].
	w := page.Weak().Clone()
	iv := pxml.NewIntervalInstance(w)
	iv.SetOPF("page", newIOPF(map[string][2]float64{
		"ref1":      {0.4, 0.6},
		"ref2":      {0.0, 0.1},
		"ref1,ref2": {0.3, 0.5},
	}))
	iv.SetOPF("ref1", newIOPF(map[string][2]float64{
		"hungE,y1":  {0.4, 0.6},
		"hungSL,y1": {0.1, 0.3},
		"hungE":     {0.1, 0.3},
		"hungSL":    {0.0, 0.2},
	}))
	iv.SetOPF("ref2", newIOPF(map[string][2]float64{
		"":        {0.3, 0.5},
		"getoorL": {0.5, 0.7},
	}))
	iv.SetVPF("y1", newIVPF(map[string][2]float64{"2002": {0.2, 0.4}, "2003": {0.6, 0.8}}))
	if err := iv.Validate(); err != nil {
		log.Fatal(err)
	}

	authors := pxml.MustParsePath("page.ref.author")
	b, err := pxml.IntervalPointBound(iv, authors, "hungE")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interval model: P(Edward Hung cited) ∈ %s\n", b)
	eb, err := pxml.IntervalExistsBound(iv, authors)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interval model: P(some author cited) ∈ %s\n", eb)
	vb, err := pxml.IntervalValueExistsBound(iv, pxml.MustParsePath("page.ref.year"), "2003")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interval model: P(year 2003 appears) ∈ %s\n", vb)
	cb, err := pxml.IntervalChainBound(iv, []string{"page", "ref1", "hungE"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interval model: P(chain page.ref1.hungE) ∈ %s\n", cb)

	// Lifting the point instance gives degenerate intervals: the two
	// models agree when the bounds collapse.
	lifted := pxml.IntervalFromPoint(page)
	lb, err := pxml.IntervalPointBound(lifted, authors, "hungE")
	if err != nil {
		log.Fatal(err)
	}
	pq, err := pxml.PointQuery(page, authors, "hungE")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlifted point model: bound %s vs point query %.6f\n", lb, pq)
}

// newIOPF builds an interval OPF from a map of comma-joined child ids to
// [lo, hi] pairs ("" is the empty set).
func newIOPF(m map[string][2]float64) *pxml.IntervalOPF {
	w := pxml.NewIntervalOPF()
	for k, b := range m {
		var ids []string
		if k != "" {
			ids = strings.Split(k, ",")
		}
		w.Put(pxml.NewSet(ids...), pxml.Bound{Lo: b[0], Hi: b[1]})
	}
	return w
}

func newIVPF(m map[string][2]float64) *pxml.IntervalVPF {
	w := pxml.NewIntervalVPF()
	for v, b := range m {
		w.Put(v, pxml.Bound{Lo: b[0], Hi: b[1]})
	}
	return w
}

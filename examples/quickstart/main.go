// Quickstart: build a small probabilistic semistructured instance with the
// fluent builder, then run each of the paper's operations on it — ancestor
// projection, selection, Cartesian product, and probabilistic point
// queries. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"pxml"
)

func main() {
	// A tiny bibliography: a root that probably has one or two books,
	// books that may have an author and a title, and a title whose string
	// value is itself uncertain (say, extracted by a noisy parser).
	inst, err := pxml.NewBuilder("R").
		Type("title-type", "VQDB", "Lore").
		Children("R", "book", "B1", "B2").
		Card("R", "book", 1, 2).
		OPF("R",
			pxml.Entry(0.3, "B1"),
			pxml.Entry(0.2, "B2"),
			pxml.Entry(0.5, "B1", "B2")).
		Children("B1", "author", "A1").
		Children("B1", "title", "T1").
		OPF("B1",
			pxml.Entry(0.1),
			pxml.Entry(0.3, "A1"),
			pxml.Entry(0.2, "T1"),
			pxml.Entry(0.4, "A1", "T1")).
		Children("B2", "author", "A2").
		Card("B2", "author", 1, 1).
		OPF("B2", pxml.Entry(1, "A2")).
		Leaf("T1", "title-type").
		VPF("T1", map[string]float64{"VQDB": 0.6, "Lore": 0.4}).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	st := inst.ComputeStats()
	fmt.Printf("instance: %d objects, %d edges, %d OPF entries, tree=%v\n\n",
		st.Objects, st.Edges, st.OPFEntries, inst.IsTree())

	// The possible-worlds semantics: every compatible instance with its
	// probability (Theorem 1 guarantees they sum to one).
	worlds, err := pxml.Enumerate(inst, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("possible worlds: %d (total probability %.6f)\n\n", worlds.Len(), worlds.TotalMass())

	// Ancestor projection: keep authors and everything above them.
	authors := pxml.MustParsePath("R.book.author")
	proj, err := pxml.AncestorProject(inst, authors)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Λ_{%s} keeps objects %v\n", authors, proj.Objects())
	fmt.Printf("  ℘'(R): %s\n\n", proj.OPF("R"))

	// Selection: condition on book B1 surely existing.
	sel, p, err := pxml.Select(inst, pxml.ObjectCondition{Path: pxml.MustParsePath("R.book"), Object: "B1"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("σ(R.book = B1): condition probability %.3f\n", p)
	fmt.Printf("  ℘'(R): %s\n\n", sel.OPF("R"))

	// Probabilistic point queries.
	pa1, err := pxml.PointQuery(inst, authors, "A1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(A1 ∈ %s) = %.4f\n", authors, pa1)
	pe, err := pxml.ExistsQuery(inst, authors)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(some author exists)  = %.4f\n", pe)
	pv, err := pxml.ValueExistsQuery(inst, pxml.MustParsePath("R.book.title"), "Lore")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(some title = Lore)   = %.4f\n\n", pv)

	// Cartesian product: merge with a second source.
	other, err := pxml.NewBuilder("R2").
		Children("R2", "book", "B9").
		IndependentOPF("R2", map[string]float64{"B9": 0.5}).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	prod, _, err := pxml.CartesianProduct(inst, other, "LIB")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("product instance: %d objects rooted at %s\n", prod.NumObjects(), prod.Root())

	// Serialize the product to the compact text format.
	fmt.Println("\nserialized product:")
	if err := pxml.EncodeText(os.Stdout, prod); err != nil {
		log.Fatal(err)
	}
}

// Sensornet: probabilistic semistructured data from a noisy input source —
// the motivating setting of the paper's introduction ("uncertainty in
// sensor readings, information extraction using probabilistic parsing of
// input sources and image processing"). Two field gateways report the same
// deployment; each report is a probabilistic instance in which both the
// structure (which sensors answered) and the values (their discretized
// readings) are uncertain. The example runs value queries and value
// selection on one report, combines the two reports with a Cartesian
// product, and contrasts that with a mixture (the possible-worlds "union")
// of the two reports.
//
// Run with:
//
//	go run ./examples/sensornet
package main

import (
	"errors"
	"fmt"
	"log"

	"pxml"
)

func gatewayA() (*pxml.ProbInstance, error) {
	return pxml.NewBuilder("gwA").
		Type("reading", "ok", "hot", "cold").
		Children("gwA", "rack", "ra1", "ra2").
		OPF("gwA",
			pxml.Entry(0.1, "ra1"),
			pxml.Entry(0.1, "ra2"),
			pxml.Entry(0.8, "ra1", "ra2")).
		Children("ra1", "sensor", "sa1", "sa2").
		IndependentOPF("ra1", map[string]float64{"sa1": 0.9, "sa2": 0.7}).
		Children("ra2", "sensor", "sa3").
		IndependentOPF("ra2", map[string]float64{"sa3": 0.95}).
		Leaf("sa1", "reading").
		VPF("sa1", map[string]float64{"ok": 0.85, "hot": 0.10, "cold": 0.05}).
		Leaf("sa2", "reading").
		VPF("sa2", map[string]float64{"ok": 0.60, "hot": 0.35, "cold": 0.05}).
		Leaf("sa3", "reading").
		VPF("sa3", map[string]float64{"ok": 0.95, "hot": 0.02, "cold": 0.03}).
		Build()
}

func gatewayB() (*pxml.ProbInstance, error) {
	return pxml.NewBuilder("gwB").
		Type("reading", "ok", "hot", "cold").
		Children("gwB", "rack", "rb1").
		IndependentOPF("gwB", map[string]float64{"rb1": 0.9}).
		Children("rb1", "sensor", "sb1").
		IndependentOPF("rb1", map[string]float64{"sb1": 0.8}).
		Leaf("sb1", "reading").
		VPF("sb1", map[string]float64{"ok": 0.5, "hot": 0.5}).
		Build()
}

func main() {
	a, err := gatewayA()
	if err != nil {
		log.Fatal(err)
	}
	b, err := gatewayB()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gateway A: %d objects; gateway B: %d objects\n\n", a.NumObjects(), b.NumObjects())

	sensors := pxml.MustParsePath("gwA.rack.sensor")

	// How likely is an overheating reading anywhere in report A?
	pHot, err := pxml.ValueExistsQuery(a, sensors, "hot")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(some sensor reads 'hot' | report A) = %.4f\n", pHot)

	// Per-sensor diagnosis: which sensor is the likely culprit?
	for _, s := range []string{"sa1", "sa2", "sa3"} {
		p, err := pxml.ValuePointQuery(a, sensors, s, "hot")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  P(%s present ∧ reads 'hot') = %.4f\n", s, p)
	}
	fmt.Println()

	// An operator confirms SOME sensor really reported 'hot'. That value
	// condition ranges over several leaves, and its exact conditional
	// distribution does not factor into per-object local functions, so
	// the fast path declines (ErrNotRepresentable) — the global semantics
	// still answers exactly over possible worlds.
	if _, _, err := pxml.Select(a, pxml.ValueCondition{
		Path: sensors, Value: "hot",
	}); !errors.Is(err, pxml.ErrNotRepresentable) {
		log.Fatalf("expected ErrNotRepresentable for a multi-leaf value condition, got %v", err)
	}
	posterior, pHotObs, err := pxml.SelectGlobal(a, pxml.ValueCondition{Path: sensors, Value: "hot"}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("σ(val(%s) = hot): P = %.4f, posterior over %d worlds\n", sensors, pHotObs, posterior.Len())

	// When the observation pins down WHICH sensor reported 'hot', the
	// conditional does factor and the fast path applies: condition on the
	// sensor's presence along its unique path and pin its reading.
	condA, pSa2, err := pxml.Select(a, pxml.ObjectCondition{Path: sensors, Object: "sa2"})
	if err != nil {
		log.Fatal(err)
	}
	condA.SetVPF("sa2", pxml.PointMass("hot"))
	fmt.Printf("P(sa2 answered) = %.4f; conditioning on it and pinning its reading to 'hot'\n\n", pSa2)

	// Combine the two gateways' reports into one deployment view.
	both, _, err := pxml.CartesianProduct(a, b, "site")
	if err != nil {
		log.Fatal(err)
	}
	pAnyHot, err := pxml.ValueExistsQuery(both, pxml.MustParsePath("site.rack.sensor"), "hot")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("combined site view: %d objects\n", both.NumObjects())
	fmt.Printf("P(some sensor reads 'hot' | both gateways) = %.4f\n\n", pAnyHot)

	// Alternatively, if the two reports describe the SAME rack and we
	// believe gateway A with weight 0.7, the union of evidence is a
	// mixture over possible worlds (which in general no longer factors
	// into a single probabilistic instance).
	ga, err := pxml.Enumerate(a, 0)
	if err != nil {
		log.Fatal(err)
	}
	gb, err := pxml.Enumerate(b, 0)
	if err != nil {
		log.Fatal(err)
	}
	mix, err := pxml.Mixture(ga, gb, 0.7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mixture of the two reports: %d worlds, total probability %.6f\n",
		mix.Len(), mix.TotalMass())
	fmt.Printf("P(report contains ≥2 sensors | mixture) = %.4f\n",
		mix.ProbWhere(func(s *pxml.Instance) bool {
			n := 0
			for _, o := range s.Objects() {
				if _, ok := s.TypeOf(o); ok {
					n++
				}
			}
			return n >= 2
		}))
}

// Package pxml is a Go implementation of PXML, the probabilistic
// semistructured data model and algebra of Hung, Getoor and Subrahmanian
// (ICDE 2003). It provides:
//
//   - the PSD data model: weak instances, cardinality constraints, object
//     and value probability functions, and probabilistic instances
//     (paper Section 3);
//   - the possible-worlds semantics: enumeration of compatible instances,
//     the local→global construction of Theorem 1, and the factorization of
//     Theorem 2 (Section 4);
//   - the algebra: ancestor projection, selection (object / value /
//     cardinality conditions) and Cartesian product (Section 5), plus the
//     deferred operators — descendant and single projection, and join —
//     as documented extensions;
//   - the efficient local algorithms of Section 6 for tree-structured
//     instances, a Bayesian-network compiler with exact variable
//     elimination for DAG-structured instances, and probabilistic point,
//     existence and chain queries;
//   - serialization (JSON and a compact text format), the Section 7.1
//     workload generator, and the Figure 7 experiment harness.
//
// Construct instances with NewBuilder (or New for manual assembly), then
// apply operators:
//
//	b := pxml.NewBuilder("R").
//		Children("R", "book", "B1", "B2").
//		Card("R", "book", 1, 2).
//		OPF("R", pxml.Entry(0.3, "B1"), pxml.Entry(0.2, "B2"), pxml.Entry(0.5, "B1", "B2"))
//	inst, err := b.Build()
//	...
//	result, err := pxml.AncestorProject(inst, pxml.MustParsePath("R.book"))
//
// The Section 6 fast paths require the weak instance graph to be a tree and
// return ErrNotTree otherwise; the *Global variants and the Bayesian
// network functions (ProbExists, PathProb) handle arbitrary acyclic
// instances.
package pxml

import (
	"errors"
	"io"
	"math/rand"

	"pxml/internal/algebra"
	"pxml/internal/bayes"
	"pxml/internal/bench"
	"pxml/internal/codec"
	"pxml/internal/core"
	"pxml/internal/engine"
	"pxml/internal/enumerate"
	"pxml/internal/gen"
	"pxml/internal/ingest"
	"pxml/internal/interval"
	"pxml/internal/model"
	"pxml/internal/pathexpr"
	"pxml/internal/prob"
	"pxml/internal/pxql"
	"pxml/internal/query"
	"pxml/internal/sets"
)

// Core model types.
type (
	// ProbInstance is a probabilistic instance (Definition 3.11): a weak
	// instance plus a local interpretation.
	ProbInstance = core.ProbInstance
	// WeakInstance is W = (V, lch, τ, val, card) (Definition 3.4).
	WeakInstance = core.WeakInstance
	// Instance is a deterministic semistructured instance (Definition
	// 3.3) — one possible world.
	Instance = model.Instance
	// Type is a leaf type with a finite value domain.
	Type = model.Type
	// OPF is an object probability function (Definition 3.8).
	OPF = prob.OPF
	// VPF is a value probability function (Definition 3.9).
	VPF = prob.VPF
	// IndependentOPF is the compact per-child representation (ProTDB's
	// model as a PXML special case, paper Section 8).
	IndependentOPF = prob.IndependentOPF
	// SymmetricOPF is the compact representation for indistinguishable
	// children (the Section 3.2 vehicle example).
	SymmetricOPF = prob.SymmetricOPF
	// Set is a canonical set of object identifiers.
	Set = sets.Set
	// Interval is a cardinality interval [min, max].
	Interval = sets.Interval
	// Path is a parsed path expression (Definition 5.1).
	Path = pathexpr.Path
	// Stats summarizes an instance (object/edge/entry counts).
	Stats = core.Stats
)

// Semantics types.
type (
	// GlobalInterpretation is a distribution over possible worlds
	// (Definition 4.2).
	GlobalInterpretation = enumerate.GlobalInterpretation
	// World is one possible world with its probability.
	World = enumerate.World
)

// Algebra types.
type (
	// Condition is a selection condition (Section 5.2).
	Condition = algebra.Condition
	// ObjectCondition is p = o (Definition 5.4).
	ObjectCondition = algebra.ObjectCondition
	// ValueCondition is val(p) = v (Definition 5.5).
	ValueCondition = algebra.ValueCondition
	// CardCondition constrains a matched object's child count (the
	// cardinality comparison the paper sketches).
	CardCondition = algebra.CardCondition
	// Conjunction conjoins several conditions; conjunctions of object
	// conditions keep the fast path.
	Conjunction = algebra.Conjunction
	// Timings is the per-phase cost breakdown of an operation.
	Timings = algebra.Timings
	// JoinResult bundles a join's instance, probability and renames.
	JoinResult = algebra.JoinResult
)

// Bayesian-network types.
type (
	// Network is a Bayesian network compiled from an instance.
	Network = bayes.Network
)

// Interval-probability types (the companion-paper PIXML variant the paper
// references in its introduction).
type (
	// Bound is a closed probability subinterval [Lo, Hi].
	Bound = interval.Bound
	// IntervalOPF assigns probability bounds to potential child sets.
	IntervalOPF = interval.OPF
	// IntervalVPF assigns probability bounds to leaf values.
	IntervalVPF = interval.VPF
	// IntervalInstance is a weak instance with interval local functions,
	// denoting the set of point instances within the bounds.
	IntervalInstance = interval.Instance
)

// Query-language types.
type (
	// PXQLQuery is a parsed pxql statement.
	PXQLQuery = pxql.Query
	// PXQLResult is the outcome of executing a pxql statement.
	PXQLResult = pxql.Result
)

// Workload/bench types.
type (
	// GenConfig parameterizes the Section 7.1 workload generator.
	GenConfig = gen.Config
	// Workload is a generated instance plus query metadata.
	Workload = gen.Instance
	// Labeling is SL or FR.
	Labeling = gen.Labeling
	// BombConfig parameterizes the adversarial width-bomb generator.
	BombConfig = gen.BombConfig
	// BenchConfig parameterizes the Figure 7 experiment harness.
	BenchConfig = bench.Config
	// BenchRow is one aggregated experiment series point.
	BenchRow = bench.Row
)

// Labeling schemes (Section 7.1).
const (
	SL = gen.SL
	FR = gen.FR
)

// Errors returned by the fast paths (shared between the algebra and query
// layers, so a single errors.Is check covers both).
var (
	ErrNotTree          = algebra.ErrNotTree
	ErrZeroProbability  = algebra.ErrZeroProbability
	ErrNotRepresentable = algebra.ErrNotRepresentable
)

// New returns an empty probabilistic instance rooted at root.
func New(root string) *ProbInstance { return core.NewProbInstance(root) }

// NewInstance returns an empty deterministic semistructured instance.
func NewInstance(root string) *Instance { return model.NewInstance(root) }

// NewType builds a leaf type with a canonical domain.
func NewType(name string, domain ...string) Type { return model.NewType(name, domain...) }

// NewSet returns the canonical set of the given ids.
func NewSet(ids ...string) Set { return sets.NewSet(ids...) }

// NewOPF returns an empty object probability function.
func NewOPF() *OPF { return prob.NewOPF() }

// NewVPF returns an empty value probability function.
func NewVPF() *VPF { return prob.NewVPF() }

// NewIndependentOPF returns an empty independent-children OPF.
func NewIndependentOPF() *IndependentOPF { return prob.NewIndependentOPF() }

// PointMass returns the VPF assigning probability one to v.
func PointMass(v string) *VPF { return prob.PointMass(v) }

// UniformVPF returns the uniform VPF over values.
func UniformVPF(values []string) *VPF { return prob.Uniform(values) }

// PathIndex is a label-partitioned adjacency index for repeated path
// evaluation over one (immutable) instance.
type PathIndex = pathexpr.Index

// NewPathIndex builds a path-evaluation index over the instance's weak
// instance graph. Build once, reuse across queries; rebuild after
// structural mutation.
func NewPathIndex(pi *ProbInstance) *PathIndex {
	return pathexpr.NewIndex(pi.WeakInstance.Graph())
}

// TargetsIndexed evaluates a path expression through a PathIndex,
// returning the objects it denotes.
func TargetsIndexed(idx *PathIndex, p Path) []string {
	return p.TargetsIndexed(idx)
}

// ParsePath parses a path expression "r.l1.l2…ln".
func ParsePath(s string) (Path, error) { return pathexpr.Parse(s) }

// MustParsePath is ParsePath that panics on error.
func MustParsePath(s string) Path { return pathexpr.MustParse(s) }

// AncestorProject computes Λ_p(I) via the Section 6.1 algorithm
// (tree-structured instances; see AncestorProjectGlobal for DAGs).
func AncestorProject(pi *ProbInstance, p Path) (*ProbInstance, error) {
	return algebra.AncestorProject(pi, p)
}

// AncestorProjectGlobal computes Λ_p by the Definition 5.3 global
// semantics via enumeration — exact on DAGs, exponential in instance size.
func AncestorProjectGlobal(pi *ProbInstance, p Path, limit int) (*GlobalInterpretation, error) {
	return algebra.AncestorProjectGlobal(pi, p, limit)
}

// Select computes σ_sc(I) with the efficient chain-conditioning algorithm,
// returning the conditioned instance and the condition's probability.
func Select(pi *ProbInstance, cond Condition) (*ProbInstance, float64, error) {
	return algebra.Select(pi, cond)
}

// SelectGlobal computes selection by the Definition 5.6 global semantics.
func SelectGlobal(pi *ProbInstance, cond Condition, limit int) (*GlobalInterpretation, float64, error) {
	return algebra.SelectGlobal(pi, cond, limit)
}

// CartesianProduct computes I × I′ (Definition 5.7), returning the product
// and the identifier renames applied to the second operand.
func CartesianProduct(a, b *ProbInstance, newRoot string) (*ProbInstance, map[string]string, error) {
	return algebra.CartesianProduct(a, b, newRoot)
}

// Join computes σ_cond(I × I′), the paper's join.
func Join(a, b *ProbInstance, newRoot string, cond Condition) (*JoinResult, error) {
	return algebra.Join(a, b, newRoot, cond)
}

// SingleProject keeps the root and the matched objects (extension).
func SingleProject(pi *ProbInstance, p Path) (*ProbInstance, error) {
	return algebra.SingleProject(pi, p)
}

// DescendantProject keeps the matched objects and their substructure
// (extension; the dual of ancestor projection).
func DescendantProject(pi *ProbInstance, p Path) (*ProbInstance, error) {
	return algebra.DescendantProject(pi, p)
}

// Mixture forms the convex combination of two world distributions
// (extension; the possible-worlds reading of union).
func Mixture(a, b *GlobalInterpretation, w float64) (*GlobalInterpretation, error) {
	return algebra.Mixture(a, b, w)
}

// Enumerate materializes the possible worlds of an instance with their
// probabilities (Definitions 4.1–4.4). limit ≤ 0 uses the default cap.
func Enumerate(pi *ProbInstance, limit int) (*GlobalInterpretation, error) {
	return enumerate.Enumerate(pi, limit)
}

// TopK returns the k most probable possible worlds via best-first search,
// exact without enumerating the (possibly astronomical) full domain.
func TopK(pi *ProbInstance, k, maxExpansions int) ([]World, error) {
	return enumerate.TopK(pi, k, maxExpansions)
}

// Sample draws one possible world by forward sampling (linear in the
// number of present objects).
func Sample(pi *ProbInstance, r *rand.Rand) (*Instance, error) {
	return enumerate.Sample(pi, r)
}

// MonteCarloEstimate is a sampled probability with its standard error.
type MonteCarloEstimate = enumerate.Estimate

// EstimateProb estimates P(pred) over possible worlds from n forward
// samples — the approximate route for instances too large for Enumerate.
func EstimateProb(pi *ProbInstance, pred func(*Instance) bool, n int, r *rand.Rand) (MonteCarloEstimate, error) {
	return enumerate.EstimateProb(pi, pred, n, r)
}

// IngestOptions configures Ingest.
type IngestOptions = ingest.Options

// Ingest lifts a deterministic semistructured instance plus extraction
// confidences into a probabilistic instance (the noisy-extraction workflow
// of the paper's introduction).
func Ingest(s *Instance, opts IngestOptions) (*ProbInstance, error) {
	return ingest.FromInstance(s, opts)
}

// Prob returns P(∃o. o ∈ p) on any acyclic instance: it tries the
// Section 6 tree fast path first and transparently falls back to
// Bayesian-network inference when the instance is a DAG. Use ExistsQuery
// (tree route) or PathProb (network route) to pick the route explicitly.
func Prob(pi *ProbInstance, p Path) (float64, error) {
	pr, err := query.ExistsQuery(pi, p)
	if errors.Is(err, ErrNotTree) {
		return bayes.PathProb(pi, p, "")
	}
	return pr, err
}

// ProbPoint returns P(o ∈ p) on any acyclic instance, routing like Prob.
// Use PointQuery (tree route) or PathProb (network route) to pick the
// route explicitly.
func ProbPoint(pi *ProbInstance, p Path, o string) (float64, error) {
	pr, err := query.PointQuery(pi, p, o)
	if errors.Is(err, ErrNotTree) {
		return bayes.PathProb(pi, p, o)
	}
	return pr, err
}

// ProbValue returns P(o ∈ p ∧ val(o) = v) on any acyclic instance. Trees
// run the ε recursion with the VPF as success probability; DAGs factor the
// probability into P(o ∈ p) · VPF(o)(v) over the network route (the value
// draw is independent of the structure choice given that o occurs). Use
// ValuePointQuery to demand the tree route explicitly.
func ProbValue(pi *ProbInstance, p Path, o, v string) (float64, error) {
	pr, err := query.ValuePointQuery(pi, p, o, v)
	if !errors.Is(err, ErrNotTree) {
		return pr, err
	}
	vpf := pi.VPF(o)
	if vpf == nil {
		return 0, nil
	}
	pp, err := bayes.PathProb(pi, p, o)
	if err != nil {
		return 0, err
	}
	return pp * vpf.Prob(v), nil
}

// PointQuery returns P(o ∈ p) on a tree-structured instance (Definition
// 6.1 / Section 6.2) — the explicit tree-route variant of ProbPoint; it
// returns ErrNotTree on DAGs (use PathProb there, or ProbPoint to route
// automatically).
func PointQuery(pi *ProbInstance, p Path, o string) (float64, error) {
	return query.PointQuery(pi, p, o)
}

// ExistsQuery returns P(∃o. o ∈ p) on a tree-structured instance — the
// explicit tree-route variant of Prob.
func ExistsQuery(pi *ProbInstance, p Path) (float64, error) {
	return query.ExistsQuery(pi, p)
}

// ChainProb returns the probability of a root-anchored object chain
// (Section 6.2); exact on DAGs too.
func ChainProb(pi *ProbInstance, chain []string) (float64, error) {
	return query.ChainProb(pi, chain)
}

// ValueExistsQuery returns P(∃ leaf o ∈ p with val(o) = v) on a tree.
func ValueExistsQuery(pi *ProbInstance, p Path, v string) (float64, error) {
	return query.ValueExistsQuery(pi, p, v)
}

// ValuePointQuery returns P(o ∈ p ∧ val(o) = v) on a tree — the explicit
// tree-route variant of ProbValue.
func ValuePointQuery(pi *ProbInstance, p Path, o, v string) (float64, error) {
	return query.ValuePointQuery(pi, p, o, v)
}

// ExistenceMarginals returns P(o exists) for every object of a
// tree-structured instance in one pass.
func ExistenceMarginals(pi *ProbInstance) (map[string]float64, error) {
	return query.ExistenceMarginals(pi)
}

// CountDistribution returns the exact distribution of the number of
// objects satisfying p in a possible world (tree-structured instances).
func CountDistribution(pi *ProbInstance, p Path) (map[int]float64, error) {
	return query.CountDistribution(pi, p)
}

// ExpectedCount returns E[|{o : o ∈ p}|] on a tree-structured instance.
func ExpectedCount(pi *ProbInstance, p Path) (float64, error) {
	return query.ExpectedCount(pi, p)
}

// Rename returns a copy of the instance with object identifiers
// substituted per the mapping (the algebra's renaming operator).
func Rename(pi *ProbInstance, m map[string]string) *ProbInstance {
	return pi.Rename(m)
}

// NewSymmetricOPF creates a compact OPF over groups of indistinguishable
// children (Section 3.2); Expand materializes the explicit table.
func NewSymmetricOPF(groups ...[]string) (*SymmetricOPF, error) {
	return prob.NewSymmetricOPF(groups...)
}

// CompileBayes maps an instance to its Bayesian network (Section 6's
// correspondence), enabling exact inference on arbitrary acyclic
// instances.
func CompileBayes(pi *ProbInstance) (*Network, error) { return bayes.Compile(pi) }

// ProbExists returns the probability that object o occurs in a possible
// world, exact on DAGs (Section 2, scenario 4).
func ProbExists(pi *ProbInstance, o string) (float64, error) {
	net, err := bayes.Compile(pi)
	if err != nil {
		return 0, err
	}
	return net.ProbExists(o)
}

// PathProb answers a point query (o != "") or existence query (o == "")
// on an arbitrary acyclic instance via the augmented Bayesian network —
// the explicit network-route variant of ProbPoint / Prob (it compiles the
// network even when the instance is a tree).
func PathProb(pi *ProbInstance, p Path, o string) (float64, error) {
	return bayes.PathProb(pi, p, o)
}

// EncodeJSON / DecodeJSON serialize instances as JSON.
func EncodeJSON(w io.Writer, pi *ProbInstance) error { return codec.EncodeJSON(w, pi) }

// DecodeJSON reads an instance from JSON.
func DecodeJSON(r io.Reader) (*ProbInstance, error) { return codec.DecodeJSON(r) }

// EncodeText serializes an instance in the compact text format.
func EncodeText(w io.Writer, pi *ProbInstance) error { return codec.EncodeText(w, pi) }

// DecodeText reads an instance from the compact text format.
func DecodeText(r io.Reader) (*ProbInstance, error) { return codec.DecodeText(r) }

// GenerateWorkload builds a Section 7.1 experimental instance.
func GenerateWorkload(cfg GenConfig) (*Workload, error) { return gen.Generate(cfg) }

// GenerateWidthBomb builds a small adversarial DAG whose inference cost
// is astronomical — the governor test workload.
func GenerateWidthBomb(cfg BombConfig) (*ProbInstance, error) { return gen.WidthBomb(cfg) }

// RunBench executes a Figure 7 experiment sweep.
func RunBench(cfg BenchConfig) ([]BenchRow, error) { return bench.Run(cfg) }

// Equal reports whether two probabilistic instances are identical within
// the probability tolerance.
func Equal(a, b *ProbInstance, tol float64) bool { return core.Equal(a, b, tol) }

// NewIntervalInstance wraps a weak instance for interval-probability use.
func NewIntervalInstance(w *WeakInstance) *IntervalInstance { return interval.New(w) }

// NewIntervalOPF returns an empty interval OPF.
func NewIntervalOPF() *IntervalOPF { return interval.NewOPF() }

// NewIntervalVPF returns an empty interval VPF.
func NewIntervalVPF() *IntervalVPF { return interval.NewVPF() }

// IntervalFromPoint lifts a point instance to degenerate intervals.
func IntervalFromPoint(pi *ProbInstance) *IntervalInstance { return interval.FromPoint(pi) }

// IntervalChainBound returns the tight probability interval of a
// root-anchored object chain over an interval instance.
func IntervalChainBound(in *IntervalInstance, chain []string) (Bound, error) {
	return interval.ChainBound(in, chain)
}

// IntervalPointBound returns the tight interval of P(o ∈ p) on a
// tree-structured interval instance.
func IntervalPointBound(in *IntervalInstance, p Path, o string) (Bound, error) {
	return interval.PointBound(in, p, o)
}

// IntervalExistsBound returns the tight interval of P(∃o. o ∈ p).
func IntervalExistsBound(in *IntervalInstance, p Path) (Bound, error) {
	return interval.ExistsBound(in, p)
}

// IntervalValueExistsBound returns the interval of P(∃ leaf o ∈ p with
// val(o) = v).
func IntervalValueExistsBound(in *IntervalInstance, p Path, v string) (Bound, error) {
	return interval.ValueExistsBound(in, p, v)
}

// EvalPXQL parses and executes one pxql statement against an instance.
// For repeated statements against the same instance, prefer an Engine,
// which caches the support structures between queries.
func EvalPXQL(pi *ProbInstance, statement string) (*PXQLResult, error) {
	return pxql.Eval(pi, statement)
}

// ParsePXQL parses one pxql statement.
func ParsePXQL(statement string) (PXQLQuery, error) { return pxql.Parse(statement) }

// Engine executes queries against one immutable instance while caching
// the derived structures (tree classification, path index, compiled
// Bayesian network, existence marginals) across queries. It is safe for
// concurrent use, context-aware, and keeps per-engine metrics.
type Engine = engine.Engine

// EngineOption configures NewEngine.
type EngineOption = engine.Option

// WithWorkers bounds an engine's batch worker pool.
func WithWorkers(n int) EngineOption { return engine.WithWorkers(n) }

// NewEngine wraps an instance in a query engine. The instance must not be
// mutated afterwards.
func NewEngine(pi *ProbInstance, opts ...EngineOption) *Engine {
	return engine.New(pi, opts...)
}

// EngineBatchResult pairs one statement of an Engine.RunBatch with its
// outcome.
type EngineBatchResult = engine.BatchResult

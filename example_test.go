package pxml_test

import (
	"fmt"
	"log"

	"pxml"
)

// Example builds the tiny bibliography of the package documentation and
// asks for the probability that author A2 exists.
func Example() {
	inst, err := pxml.NewBuilder("R").
		Children("R", "book", "B1", "B2").
		OPF("R",
			pxml.Entry(0.3, "B1"),
			pxml.Entry(0.2, "B2"),
			pxml.Entry(0.5, "B1", "B2")).
		Children("B2", "author", "A2").
		OPF("B2", pxml.Entry(1, "A2")).
		Children("B1", "author", "A1").
		OPF("B1", pxml.Entry(0.4), pxml.Entry(0.6, "A1")).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	p, err := pxml.PointQuery(inst, pxml.MustParsePath("R.book.author"), "A2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(A2 exists) = %.2f\n", p)
	// Output: P(A2 exists) = 0.70
}

// ExampleAncestorProject shows the Λ operator keeping matched objects and
// their ancestors while marginalizing everything else away.
func ExampleAncestorProject() {
	inst := pxml.NewBuilder("R").
		Children("R", "book", "B1").
		OPF("R", pxml.Entry(0.2), pxml.Entry(0.8, "B1")).
		Children("B1", "author", "A1").
		Children("B1", "title", "T1").
		OPF("B1",
			pxml.Entry(0.1),
			pxml.Entry(0.5, "A1"),
			pxml.Entry(0.2, "T1"),
			pxml.Entry(0.2, "A1", "T1")).
		MustBuild()
	out, err := pxml.AncestorProject(inst, pxml.MustParsePath("R.book.author"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out.Objects())
	fmt.Printf("%.2f\n", out.OPF("B1").Prob(pxml.NewSet("A1")))
	// Output:
	// [A1 B1 R]
	// 1.00
}

// ExampleSelect conditions an instance on an object surely existing
// (Section 2, situation 2 of the paper).
func ExampleSelect() {
	inst := pxml.NewBuilder("R").
		Children("R", "book", "B1", "B2").
		OPF("R",
			pxml.Entry(0.3, "B1"),
			pxml.Entry(0.2, "B2"),
			pxml.Entry(0.5, "B1", "B2")).
		MustBuild()
	out, p, err := pxml.Select(inst, pxml.ObjectCondition{
		Path: pxml.MustParsePath("R.book"), Object: "B1"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(condition) = %.2f\n", p)
	fmt.Printf("P({B1}) after = %.3f\n", out.OPF("R").Prob(pxml.NewSet("B1")))
	// Output:
	// P(condition) = 0.80
	// P({B1}) after = 0.375
}

// ExampleEnumerate lists the possible worlds of a probabilistic instance
// with their probabilities (the Definition 4.4 semantics).
func ExampleEnumerate() {
	inst := pxml.NewBuilder("R").
		Children("R", "x", "A").
		OPF("R", pxml.Entry(0.25), pxml.Entry(0.75, "A")).
		MustBuild()
	worlds, err := pxml.Enumerate(inst, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range worlds.Worlds() {
		fmt.Printf("%.2f %v\n", w.P, w.S.Objects())
	}
	// Output:
	// 0.75 [A R]
	// 0.25 [R]
}

// ExampleEvalPXQL runs query-language statements against an instance.
func ExampleEvalPXQL() {
	inst := pxml.NewBuilder("R").
		Children("R", "book", "B1").
		OPF("R", pxml.Entry(0.4), pxml.Entry(0.6, "B1")).
		MustBuild()
	res, err := pxml.EvalPXQL(inst, "PROB R.book = B1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Text)
	// Output: P(B1 ∈ R.book) = 0.600000000
}

// ExampleCartesianProduct merges two sources under a fresh root
// (Definition 5.7).
func ExampleCartesianProduct() {
	a := pxml.NewBuilder("r1").
		Children("r1", "k", "x").
		OPF("r1", pxml.Entry(0.5), pxml.Entry(0.5, "x")).
		MustBuild()
	b := pxml.NewBuilder("r2").
		Children("r2", "k", "y").
		OPF("r2", pxml.Entry(0.5), pxml.Entry(0.5, "y")).
		MustBuild()
	prod, _, err := pxml.CartesianProduct(a, b, "root")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.2f\n", prod.OPF("root").Prob(pxml.NewSet("x", "y")))
	// Output: 0.25
}

// ExampleTopK finds the most probable possible worlds without enumerating
// the full domain.
func ExampleTopK() {
	inst := pxml.NewBuilder("R").
		Children("R", "x", "A", "B").
		OPF("R",
			pxml.Entry(0.5, "A"),
			pxml.Entry(0.3, "A", "B"),
			pxml.Entry(0.2)).
		MustBuild()
	worlds, err := pxml.TopK(inst, 2, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range worlds {
		fmt.Printf("%.1f %v\n", w.P, w.S.Objects())
	}
	// Output:
	// 0.5 [A R]
	// 0.3 [A B R]
}

// ExampleCountDistribution computes the exact distribution of how many
// objects satisfy a path expression.
func ExampleCountDistribution() {
	inst := pxml.NewBuilder("R").
		Children("R", "x", "A", "B").
		IndependentOPF("R", map[string]float64{"A": 0.5, "B": 0.5}).
		MustBuild()
	d, err := pxml.CountDistribution(inst, pxml.MustParsePath("R.x"))
	if err != nil {
		log.Fatal(err)
	}
	for k := 0; k <= 2; k++ {
		fmt.Printf("P(count=%d) = %.2f\n", k, d[k])
	}
	// Output:
	// P(count=0) = 0.25
	// P(count=1) = 0.50
	// P(count=2) = 0.25
}
